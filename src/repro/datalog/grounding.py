"""Guard-driven grounding (the first half of Theorem 4.4).

For a quasi-guarded rule, instantiating the guard atom against the
database determines every variable of the rule (directly or through the
functional key constraints of ``A_td``), so the number of ground
instances is O(|A|) per rule and O(|P| * |A|) overall.  The extensional
part of each body -- positive atoms, negated atoms, built-ins -- is
resolved during grounding; what remains is a propositional Horn program
over the intensional atoms, which :func:`repro.datalog.horn.horn_least_model`
solves in linear time.

The same machinery, pointed at *every* candidate instantiation instead
of only the ones supported by the database, yields the fully
materialized ground program that Section 6's optimization (2) warns
about; that variant lives in the benchmark modules.

Three execution forms share the per-rule plans of
:func:`prepare_grounding`:

* the **streamed** form (:func:`ground_program_streamed`, the
  production path of
  :class:`repro.core.quasi_guarded.QuasiGuardedEvaluator`): a
  push-based emitter that instantiates ground rules *on demand* and
  feeds them one at a time into an online LTUR
  (:class:`repro.datalog.horn.StreamingHorn`).  Base rules (no
  intensional body atom) are instantiated up front; every other rule
  is *driven* by one designated intensional body literal and is only
  instantiated for the bindings its driver atom actually takes in the
  least model -- Section 6's optimization (2) ("generate only those
  ground instances of rules which actually produce new facts"),
  realized at grounding time.  Demand pruning
  (:func:`repro.datalog.magic.demanded_predicates`) additionally skips
  whole rules whose heads cannot reach the query, and statically dead
  rules (a positive extensional literal over an empty relation) are
  never instantiated.  Peak live-rule residency is the LTUR's waiting
  frontier, not the ground program;
* the **eager interned** form (:func:`ground_program_ids`, the PR 3
  pipeline, retained as the ``quasi-guarded-eager`` ablation): guard
  instantiation joins over a
  :class:`~repro.datalog.setengine.SetDatabase` of dense-int fact
  tuples and materializes the full ground program as
  ``(head_atom_id, body_atom_ids)`` pairs drawn from a shared
  :class:`~repro.datalog.interning.InternPool` -- no raw-value tuple
  crosses the grounding -> horn boundary, and
  :func:`repro.datalog.horn.horn_least_model_ids` propagates over the
  same ids;
* the **raw-value** form (:func:`ground_program`): the original
  PR 2-era pipeline over value-level databases and
  :class:`~repro.structures.structure.Fact` atoms, retained as the
  ablation baseline for ``bench_datalog_engine.py``'s solver workloads
  and as the debugging-friendly API (ground rules you can read).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import repeat
from typing import Sequence

from ..structures.structure import Fact, Structure
from .ast import Atom, Constant, Literal, Program, Rule, Variable
from .builtins import UNBOUND, BuiltinRegistry, standard_registry
from .evaluate import Database
from .horn import GroundRule, StreamingHorn, horn_least_model, horn_least_model_ids
from .interning import InternPool
from .profile import CostModel, IndexSelection, PlanProfile, min_index_selection
from .setengine import SetDatabase


class NotGroundableError(ValueError):
    """The extensional body part cannot bind all rule variables."""


@dataclass
class GroundingStats:
    ground_rules: int = 0
    killed_by_extensional: int = 0
    #: total rows surviving each extensional join step -- the
    #: O(|P| * |A|) *work* measure of Theorem 4.4 (a mis-ordered plan
    #: shows up here as a super-linear blow-up even when the final
    #: ground-rule count stays linear)
    bindings_explored: int = 0
    #: streamed path only: program rules never instantiated at all --
    #: head outside the demanded set (magic-style relevance), a
    #: positive extensional body literal over an empty/failing
    #: relation (statically dead for this structure), or a driver
    #: predicate that never derived a single atom (driver-starved)
    rules_pruned: int = 0
    #: streamed path only: the high-water mark of ground rules stored
    #: in the online LTUR's waiting frontier -- the streamed analogue
    #: of the eager pipeline's O(|ground program|) rule list
    peak_live_rules: int = 0


@dataclass(frozen=True)
class PreparedGrounding:
    """Per-rule extensional join orders, computed once per program.

    Grounding the same compiled program over many structures (the
    Theorem 4.5 amortization) re-runs only the data-dependent half;
    the body-ordering half lives here and is cached by
    :class:`repro.datalog.backends.ProgramCache`.  ``plans`` drives the
    eager forms, ``stream_plans`` the streamed one (same greedy
    ordering, seeded with the driver literal's variables).
    """

    program: Program
    registry: BuiltinRegistry
    #: parallel to ``program.rules``: (ordered extensional literals,
    #: intensional body literals)
    plans: tuple[tuple[tuple[Literal, ...], tuple[Literal, ...]], ...]
    #: parallel to ``program.rules``: slot-indexed driver plans for
    #: :func:`ground_program_streamed`
    stream_plans: tuple["StreamRulePlan", ...] = ()
    #: MinIndexSelection over the plans' search signatures; installed
    #: on the SetDatabase by the interned/streamed forms so nested
    #: probe patterns share one lexicographic index
    index_selection: IndexSelection | None = None
    #: sink predicates (heads occurring in no rule body) whose driven
    #: rules the streamed grounder defers to a single post-fixpoint
    #: pass -- empty when prepared with ``single_pass=False``
    deferred: frozenset[str] = frozenset()


def prepare_grounding(
    program: Program,
    registry: BuiltinRegistry | None = None,
    cost: CostModel | None = None,
    single_pass: bool = True,
) -> PreparedGrounding:
    """Order every rule's extensional body ahead of time.

    ``cost`` (a :class:`~repro.datalog.profile.CostModel` over a
    recorded :class:`~repro.datalog.profile.PlanProfile`) breaks
    equal-bound-slot ties by estimated output cardinality; without it
    the ordering is the static greedy one (textual tie-break).

    ``single_pass`` marks the program's *sink* predicates -- heads
    that occur in no rule body, like the compiled queries' answer
    predicate ``phi`` -- for the streamed grounder's deferred route:
    their rules fire exactly once after the recursive fixpoint settles
    instead of once per delta round, and their unresolved intensional
    body atoms are checked against the final model instead of being
    parked in the online LTUR's waiting frontier.  Pass ``False`` for
    the every-round ablation (the pre-optimization behaviour);
    :class:`~repro.datalog.backends.ProgramCache` keys its grounding
    entries on this flag so both preparations of one program can live
    side by side.
    """
    registry = registry if registry is not None else standard_registry()
    idb = program.intensional_predicates()
    plans = tuple(
        tuple(map(tuple, _plan_extensional(rule, idb, registry, cost)))
        for rule in program.rules
    )
    stream_plans = tuple(
        _stream_plan(rule, idb, registry, cost) for rule in program.rules
    )
    selection = min_index_selection(
        _grounding_signatures(plans, stream_plans, registry)
    )
    deferred: frozenset[str] = frozenset()
    if single_pass:
        in_bodies = {
            literal.atom.predicate
            for rule in program.rules
            for literal in rule.body
        }
        deferred = frozenset(idb - in_bodies)
    return PreparedGrounding(
        program, registry, plans, stream_plans, selection, deferred
    )


def _grounding_signatures(
    plans, stream_plans, registry: BuiltinRegistry
) -> dict[str, set[tuple[int, ...]]]:
    """The search signatures (bound-position sets of index probes) of
    every extensional join step, across both the eager and streamed
    plans -- the MinIndexSelection input."""
    signatures: dict[str, set[tuple[int, ...]]] = {}

    def record(predicate: str, key: list[int], has_free: bool) -> None:
        # only steps with both a key and free positions probe an index;
        # fully-bound steps are membership checks, keyless ones scans
        if key and has_free:
            signatures.setdefault(predicate, set()).add(tuple(sorted(key)))

    for ordered, _idb_literals in plans:
        bound: set[Variable] = set()
        for literal in ordered:
            atom = literal.atom
            if literal.positive and atom.predicate not in registry:
                key: list[int] = []
                seen: set[Variable] = set()
                has_free = False
                for pos, arg in enumerate(atom.args):
                    if isinstance(arg, Constant) or arg in bound:
                        key.append(pos)
                    elif arg not in seen:
                        seen.add(arg)
                        has_free = True
                record(atom.predicate, key, has_free)
            bound.update(atom.variables())
    for plan in stream_plans:
        for step in plan.steps:
            if step.kind == "rel":
                key = [p for p, _ in step.consts] + [p for p, _ in step.bound]
                record(step.predicate, key, bool(step.free))
    return signatures


def _plan_extensional(
    rule: Rule,
    idb: frozenset[str],
    registry: BuiltinRegistry,
    cost: CostModel | None = None,
) -> tuple[list[Literal], list[Literal]]:
    """Order the non-IDB body so each step runs with earlier bindings.

    Returns (ordered extensional steps, IDB literals).  Raises
    :class:`NotGroundableError` if the extensional part cannot bind
    every variable -- i.e. the rule is not groundable guard-first, which
    for the programs of this paper coincides with not being
    quasi-guarded.
    """
    idb_literals: list[Literal] = []
    remaining: list[Literal] = []
    for literal in rule.body:
        name = literal.atom.predicate
        if name in idb:
            if not literal.positive:
                raise NotGroundableError(
                    f"negated intensional atom {literal} unsupported"
                )
            idb_literals.append(literal)
        else:
            remaining.append(literal)

    bound: set[Variable] = set()
    ordered = _order_body(remaining, bound, registry, rule, cost)

    needed = rule.variables()
    if not needed <= bound:
        missing = sorted(v.name for v in needed - bound)
        raise NotGroundableError(
            f"variables {missing} not bound by the extensional body of: {rule}"
        )
    return ordered, idb_literals


def _order_body(
    remaining: list[Literal],
    bound: set[Variable],
    registry: BuiltinRegistry,
    rule: Rule,
    cost: CostModel | None = None,
) -> list[Literal]:
    """Greedy bound-first ordering of ``remaining``; mutates ``bound``.

    Shared by the guard-first plan (``bound`` starts empty) and the
    streamed driver plans (``bound`` starts at the driver literal's
    variables).  With a ``cost`` model, equal bound-slot scores break
    by estimated output rows (profiled fanout / relation size) instead
    of body textual order.
    """
    remaining = list(remaining)
    ordered: list[Literal] = []

    def mask(atom: Atom) -> tuple[bool, ...]:
        return tuple(
            isinstance(a, Constant) or a in bound for a in atom.args
        )

    while remaining:
        chosen = None
        # prefer the relation atom with the most bound argument slots --
        # an unbound pick mid-join degenerates into a full-relation scan
        # and breaks the O(|P| * |A|) bound of Theorem 4.4.
        best_key = None
        for index, literal in enumerate(remaining):
            atom = literal.atom
            if literal.positive and atom.predicate not in registry:
                m = mask(atom)
                score = sum(m)
                est = float("inf")
                if cost is not None:
                    got = cost.estimate(
                        atom.predicate,
                        len(atom.args),
                        tuple(i for i, b in enumerate(m) if b),
                    )
                    if got is not None:
                        est = got
                key = (-score, est, index)
                if best_key is None or key < best_key:
                    best_key = key
                    chosen = literal
        if chosen is None:
            for literal in remaining:
                atom = literal.atom
                if (
                    literal.positive
                    and atom.predicate in registry
                    and registry.get(atom.predicate).can_evaluate(mask(atom))
                ):
                    chosen = literal
                    break
        if chosen is None:
            for literal in remaining:
                if not literal.positive and all(mask(literal.atom)):
                    chosen = literal
                    break
        if chosen is None:
            raise NotGroundableError(f"cannot order extensional body of: {rule}")
        remaining.remove(chosen)
        bound.update(chosen.atom.variables())
        ordered.append(chosen)
    return ordered


def ground_program(
    program: Program,
    db: Database | Structure,
    registry: BuiltinRegistry | None = None,
    stats: GroundingStats | None = None,
    prepared: PreparedGrounding | None = None,
    meter=None,
) -> list[GroundRule]:
    """All supported ground instances, as propositional Horn rules.

    The raw-value form: propositional atoms are
    :class:`repro.structures.structure.Fact` values of the intensional
    predicates.  ``prepared`` (from :func:`prepare_grounding`) skips
    re-ordering the rule bodies.  ``meter`` (a
    :class:`repro.datalog.budget.BudgetMeter`) is checked once per
    program rule.  The production solve path uses the interned form
    (:func:`ground_program_ids`) instead; this one is the ablation
    baseline and the readable-output API.
    """
    if isinstance(db, Structure):
        db = Database.from_structure(db)
    if prepared is None:
        prepared = prepare_grounding(program, registry)
    registry = prepared.registry
    stats = stats if stats is not None else GroundingStats()
    ground_rules: list[GroundRule] = []

    for rule, (ordered, idb_literals) in zip(
        prepared.program.rules, prepared.plans
    ):
        if meter is not None:
            meter.check(stats.ground_rules)
        columns, length = _instantiate_batch(
            ordered, db, registry, stats
        )
        if not length:
            continue

        # build the propositional rules straight off the columns: no
        # per-binding substitution dict, no Atom.substitute round-trip
        def arg_rows(atom: Atom):
            if not atom.args:
                return repeat((), length)
            sources = [
                repeat(arg.value, length)
                if isinstance(arg, Constant)
                else columns[arg]
                for arg in atom.args
            ]
            return zip(*sources)

        head_predicate = rule.head.predicate
        body_predicates = [lit.atom.predicate for lit in idb_literals]
        body_rows = [arg_rows(lit.atom) for lit in idb_literals]
        for head_args, *body_args in zip(arg_rows(rule.head), *body_rows):
            body = tuple(
                Fact(predicate, args)
                for predicate, args in zip(body_predicates, body_args)
            )
            ground_rules.append(
                GroundRule(Fact(head_predicate, head_args), body)
            )
        stats.ground_rules += length
    return ground_rules


def _instantiate_batch(
    ordered: Sequence[Literal],
    db: Database,
    registry: BuiltinRegistry,
    stats: GroundingStats,
) -> tuple[dict[Variable, list], int]:
    """Run one rule's extensional join order set-at-a-time.

    The bindings live in a columnar batch (variable -> parallel value
    list, as in :mod:`repro.datalog.setengine` but over raw values --
    grounding happens before interning).  Each literal classifies its
    argument positions once, fetches one incrementally-maintained
    index from the database, and probes it per row, instead of
    re-resolving pattern and index per binding.

    NOTE: the join branches below deliberately mirror the interned
    kernel in ``setengine._join`` / ``_builtin`` / ``_negate``
    (classification, dup filters, semi-join vs index-probe split).  A
    semantics fix in one must be applied to the other, or this path
    silently diverges from the default backend.
    """
    columns: dict[Variable, list] = {}
    length = 1  # the unit batch: one empty binding
    for literal in ordered:
        atom = literal.atom
        consts: list[tuple[int, object]] = []
        bound: list[tuple[int, Variable]] = []
        free: list[tuple[int, Variable]] = []
        dups: list[tuple[int, int]] = []
        first_pos: dict[Variable, int] = {}
        for pos, arg in enumerate(atom.args):
            if isinstance(arg, Constant):
                consts.append((pos, arg.value))
            elif arg in columns:
                bound.append((pos, arg))
            elif arg in first_pos:
                dups.append((pos, first_pos[arg]))
            else:
                first_pos[arg] = pos
                free.append((pos, arg))

        if literal.positive and atom.predicate not in registry:
            columns, length = _join_relation(
                columns, length, atom, consts, bound, free, dups, db
            )
        elif literal.positive:
            columns, length = _join_builtin(
                columns,
                length,
                atom,
                consts,
                bound,
                free,
                dups,
                registry.get(atom.predicate),
            )
        else:
            if free or dups:
                raise NotGroundableError(
                    f"negated atom {atom} not bound during grounding"
                )
            columns, length = _filter_negation(
                columns, length, atom, consts, bound, db, registry, stats
            )
        stats.bindings_explored += length
        if not length:
            break
    return columns, length


def _join_relation(
    columns, length, atom, consts, bound, free, dups, db: Database
):
    key_positions = tuple(
        sorted([pos for pos, _ in consts] + [pos for pos, _ in bound])
    )
    arity = atom.arity
    if not free and not dups:
        # semi-join: candidate fact tuples are fully determined
        rel = db.relation(atom.predicate)
        sources = [None] * arity
        for pos, value in consts:
            sources[pos] = repeat(value, length)
        for pos, var in bound:
            sources[pos] = columns[var]
        if arity == 0:
            keep = range(length) if () in rel else []
        else:
            keep = [
                r
                for r, key in enumerate(zip(*sources))
                if key in rel
            ]
        return _take_rows(columns, keep), len(keep)

    out_columns = {v: [] for v in columns}
    out_columns.update({var: [] for _, var in free})
    old = [(out_columns[v].append, columns[v]) for v in columns]
    new = [(out_columns[var].append, pos) for pos, var in free]
    count = 0

    if not key_positions:  # unrestricted scan / cross product
        facts = db.relation(atom.predicate)
        if dups:
            facts = [
                f for f in facts if all(f[p] == f[q] for p, q in dups)
            ]
        for r in range(length):
            for fact in facts:
                for append, col in old:
                    append(col[r])
                for append, pos in new:
                    append(fact[pos])
                count += 1
        return out_columns, count

    index = db.lookup(atom.predicate, key_positions)
    by_pos = {pos: value for pos, value in consts}
    for pos, var in bound:
        by_pos[pos] = columns[var]
    keys = zip(
        *(
            by_pos[pos]
            if isinstance(by_pos[pos], list)
            else repeat(by_pos[pos], length)
            for pos in key_positions
        )
    )
    get = index.get
    for r, key in enumerate(keys):
        matches = get(key)
        if not matches:
            continue
        if dups:
            matches = [
                f for f in matches if all(f[p] == f[q] for p, q in dups)
            ]
        for fact in matches:
            for append, col in old:
                append(col[r])
            for append, pos in new:
                append(fact[pos])
        count += len(matches)
    return out_columns, count


def _join_builtin(
    columns, length, atom, consts, bound, free, dups, builtin
):
    arity = atom.arity
    sources: list = [None] * arity
    for pos, value in consts:
        sources[pos] = repeat(value, length)
    for pos, var in bound:
        sources[pos] = columns[var]
    for pos, _ in free:
        sources[pos] = repeat(UNBOUND, length)
    for pos, _ in dups:
        sources[pos] = repeat(UNBOUND, length)
    patterns = zip(*sources) if arity else repeat((), length)

    out_columns = {v: [] for v in columns}
    out_columns.update({var: [] for _, var in free})
    old = [(out_columns[v].append, columns[v]) for v in columns]
    new = [(out_columns[var].append, pos) for pos, var in free]
    count = 0
    for r, pattern in enumerate(patterns):
        for solution in builtin.evaluate(pattern):
            if dups and not all(
                solution[p] == solution[q] for p, q in dups
            ):
                continue
            for append, col in old:
                append(col[r])
            for append, pos in new:
                append(solution[pos])
            count += 1
    return out_columns, count


def _filter_negation(
    columns, length, atom, consts, bound, db, registry, stats
):
    arity = atom.arity
    sources: list = [None] * arity
    for pos, value in consts:
        sources[pos] = repeat(value, length)
    for pos, var in bound:
        sources[pos] = columns[var]
    patterns = zip(*sources) if arity else repeat((), length)
    if atom.predicate in registry:
        builtin = registry.get(atom.predicate)
        held_flags = [
            bool(any(builtin.evaluate(pattern))) for pattern in patterns
        ]
    else:
        rel = db.relation(atom.predicate)
        held_flags = [pattern in rel for pattern in patterns]
    keep = [r for r, held in enumerate(held_flags) if not held]
    stats.killed_by_extensional += length - len(keep)
    return _take_rows(columns, keep), len(keep)


def _take_rows(columns: dict, keep) -> dict:
    if isinstance(keep, range):
        return columns
    return {v: [col[r] for r in keep] for v, col in columns.items()}


# ----------------------------------------------------------------------
# The interned form: joins over a SetDatabase of dense-int fact tuples,
# ground rules emitted as atom ids from a shared InternPool.  Mirrors
# the raw branches above step for step (and, like them, the kernels in
# setengine._join/_builtin/_negate); a semantics fix in one variant
# must be applied to the others.
# ----------------------------------------------------------------------


def ground_program_ids(
    prepared: PreparedGrounding,
    db: SetDatabase,
    pool: InternPool,
    stats: GroundingStats | None = None,
    meter=None,
) -> list[tuple[int, tuple[int, ...]]]:
    """All supported ground instances, as ``(head_id, body_ids)`` pairs.

    The interned half of Theorem 4.4: ``db`` holds the extensional
    facts as dense-int tuples, ``pool`` (which must share ``db``'s
    interner) assigns dense ids to the ground intensional atoms, and
    the returned rules are pure integers -- ready for
    :func:`repro.datalog.horn.horn_least_model_ids` with no raw-value
    tuple crossing the boundary.  ``meter`` (a
    :class:`repro.datalog.budget.BudgetMeter`) is checked once per
    program rule.
    """
    if pool.interner is not db.interner:
        raise ValueError(
            "pool and database must share one interner -- the point of "
            "the interned pipeline is a single interning context per solve"
        )
    registry = prepared.registry
    stats = stats if stats is not None else GroundingStats()
    if prepared.index_selection is not None:
        db.use_index_selection(prepared.index_selection)
    intern = db.interner.intern
    ground_rules: list[tuple[int, tuple[int, ...]]] = []

    for rule, (ordered, idb_literals) in zip(
        prepared.program.rules, prepared.plans
    ):
        if meter is not None:
            meter.check(stats.ground_rules)
        columns, length = _instantiate_batch_ids(ordered, db, registry, stats)
        if not length:
            continue

        def arg_rows(atom: Atom):
            if not atom.args:
                return repeat((), length)
            sources = [
                repeat(intern(arg.value), length)
                if isinstance(arg, Constant)
                else columns[arg]
                for arg in atom.args
            ]
            return zip(*sources)

        # one bulk-intern pass per atom column, then C-speed zips pair
        # head ids with body-id tuples -- no per-row Python
        head_ids = pool.atom_ids(rule.head.predicate, arg_rows(rule.head))
        if not idb_literals:
            ground_rules.extend(zip(head_ids, repeat(())))
        else:
            body_id_columns = [
                pool.atom_ids(lit.atom.predicate, arg_rows(lit.atom))
                for lit in idb_literals
            ]
            ground_rules.extend(zip(head_ids, zip(*body_id_columns)))
        stats.ground_rules += length
    return ground_rules


def _instantiate_batch_ids(
    ordered: Sequence[Literal],
    db: SetDatabase,
    registry: BuiltinRegistry,
    stats: GroundingStats,
) -> tuple[dict[Variable, list[int]], int]:
    """The interned twin of :func:`_instantiate_batch`: columns hold
    dense ids, relation steps probe the interned database's indexes,
    and only built-in steps touch raw values (decoded on the way in,
    fresh outputs interned on the way out, as in the set engine)."""
    columns: dict[Variable, list[int]] = {}
    length = 1  # the unit batch: one empty binding
    for literal in ordered:
        atom = literal.atom
        consts: list[tuple[int, object]] = []
        bound: list[tuple[int, Variable]] = []
        free: list[tuple[int, Variable]] = []
        dups: list[tuple[int, int]] = []
        first_pos: dict[Variable, int] = {}
        for pos, arg in enumerate(atom.args):
            if isinstance(arg, Constant):
                consts.append((pos, arg.value))
            elif arg in columns:
                bound.append((pos, arg))
            elif arg in first_pos:
                dups.append((pos, first_pos[arg]))
            else:
                first_pos[arg] = pos
                free.append((pos, arg))

        if literal.positive and atom.predicate not in registry:
            columns, length = _join_relation_ids(
                columns, length, atom, consts, bound, free, dups, db
            )
        elif literal.positive:
            columns, length = _join_builtin_ids(
                columns,
                length,
                atom,
                consts,
                bound,
                free,
                dups,
                registry.get(atom.predicate),
                db,
            )
        else:
            if free or dups:
                raise NotGroundableError(
                    f"negated atom {atom} not bound during grounding"
                )
            columns, length = _filter_negation_ids(
                columns, length, atom, consts, bound, db, registry, stats
            )
        stats.bindings_explored += length
        if not length:
            break
    return columns, length


def _join_relation_ids(
    columns, length, atom, consts, bound, free, dups, db: SetDatabase
):
    intern = db.interner.intern
    consts = [(pos, intern(value)) for pos, value in consts]
    key_positions = tuple(
        sorted([pos for pos, _ in consts] + [pos for pos, _ in bound])
    )
    arity = atom.arity
    if not free and not dups:
        # semi-join: candidate fact tuples are fully determined
        if arity == 0:
            keep = (
                range(length) if () in db.relation(atom.predicate) else []
            )
            return _take_rows(columns, keep), len(keep)
        if arity == 1:
            bits = db.bits(atom.predicate)
            if consts:
                keep = range(length) if (bits >> consts[0][1]) & 1 else []
            else:
                column = columns[bound[0][1]]
                keep = [
                    r for r in range(length) if (bits >> column[r]) & 1
                ]
            return _take_rows(columns, keep), len(keep)
        rel = db.relation(atom.predicate)
        sources = [None] * arity
        for pos, cid in consts:
            sources[pos] = repeat(cid, length)
        for pos, var in bound:
            sources[pos] = columns[var]
        keep = [
            r for r, key in enumerate(zip(*sources)) if key in rel
        ]
        return _take_rows(columns, keep), len(keep)

    out_columns = {v: [] for v in columns}
    out_columns.update({var: [] for _, var in free})
    old = [(out_columns[v].append, columns[v]) for v in columns]
    new = [(out_columns[var].append, pos) for pos, var in free]
    count = 0

    if not key_positions:  # unrestricted scan / cross product
        facts = db.relation(atom.predicate)
        if dups:
            facts = [
                f for f in facts if all(f[p] == f[q] for p, q in dups)
            ]
        if not columns and length == 1:  # unit batch (the guard step):
            # the scan IS the result -- transpose at C speed instead of
            # appending per cell
            facts = list(facts)
            if not facts:
                return out_columns, 0
            transposed = list(zip(*facts))
            return {
                var: list(transposed[pos]) for pos, var in free
            }, len(facts)
        for r in range(length):
            for fact in facts:
                for append, col in old:
                    append(col[r])
                for append, pos in new:
                    append(fact[pos])
                count += 1
        return out_columns, count

    get, key_order = db.probe_plan(atom.predicate, key_positions)
    by_pos = {pos: cid for pos, cid in consts}
    for pos, var in bound:
        by_pos[pos] = columns[var]
    if len(key_order) == 1:
        # single-position indexes key on the bare id (hash and lex both)
        key_source = by_pos[key_order[0]]
        keys = (
            key_source
            if isinstance(key_source, list)
            else repeat(key_source, length)
        )
    else:
        keys = zip(
            *(
                by_pos[pos]
                if isinstance(by_pos[pos], list)
                else repeat(by_pos[pos], length)
                for pos in key_order
            )
        )
    for r, key in enumerate(keys):
        matches = get(key)
        if not matches:
            continue
        if dups:
            matches = [
                f for f in matches if all(f[p] == f[q] for p, q in dups)
            ]
        for fact in matches:
            for append, col in old:
                append(col[r])
            for append, pos in new:
                append(fact[pos])
        count += len(matches)
    return out_columns, count


def _join_builtin_ids(
    columns, length, atom, consts, bound, free, dups, builtin, db: SetDatabase
):
    # built-ins see raw values: decode bound ids on the way in, intern
    # fresh outputs on the way out (exactly as setengine._builtin does)
    interner = db.interner
    value_of = interner.value_of
    intern = interner.intern
    arity = atom.arity
    sources: list = [None] * arity
    for pos, value in consts:
        sources[pos] = repeat(value, length)
    for pos, var in bound:
        sources[pos] = [value_of(i) for i in columns[var]]
    for pos, _ in free:
        sources[pos] = repeat(UNBOUND, length)
    for pos, _ in dups:
        sources[pos] = repeat(UNBOUND, length)
    patterns = zip(*sources) if arity else repeat((), length)

    out_columns = {v: [] for v in columns}
    out_columns.update({var: [] for _, var in free})
    old = [(out_columns[v].append, columns[v]) for v in columns]
    new = [(out_columns[var].append, pos) for pos, var in free]
    count = 0
    for r, pattern in enumerate(patterns):
        for solution in builtin.evaluate(pattern):
            if dups and not all(
                solution[p] == solution[q] for p, q in dups
            ):
                continue
            for append, col in old:
                append(col[r])
            for append, pos in new:
                append(intern(solution[pos]))
            count += 1
    return out_columns, count


def _filter_negation_ids(
    columns, length, atom, consts, bound, db: SetDatabase, registry, stats
):
    arity = atom.arity
    if atom.predicate in registry:
        builtin = registry.get(atom.predicate)
        value_of = db.interner.value_of
        sources: list = [None] * arity
        for pos, value in consts:
            sources[pos] = repeat(value, length)
        for pos, var in bound:
            sources[pos] = [value_of(i) for i in columns[var]]
        patterns = zip(*sources) if arity else repeat((), length)
        held_flags = [
            bool(any(builtin.evaluate(pattern))) for pattern in patterns
        ]
    elif arity == 1:
        bits = db.bits(atom.predicate)
        if consts:
            cid = db.interner.intern(consts[0][1])
            held_flags = [bool((bits >> cid) & 1)] * length
        else:
            column = columns[bound[0][1]]
            held_flags = [
                bool((bits >> column[r]) & 1) for r in range(length)
            ]
    else:
        intern = db.interner.intern
        rel = db.relation(atom.predicate)
        sources = [None] * arity
        for pos, value in consts:
            sources[pos] = repeat(intern(value), length)
        for pos, var in bound:
            sources[pos] = columns[var]
        patterns = zip(*sources) if arity else repeat((), length)
        held_flags = [pattern in rel for pattern in patterns]
    keep = [r for r, held in enumerate(held_flags) if not held]
    stats.killed_by_extensional += length - len(keep)
    return _take_rows(columns, keep), len(keep)


# ----------------------------------------------------------------------
# The streamed form: a push-based emitter that instantiates ground
# rules on demand and feeds them into an online LTUR.  Every rule with
# an intensional body literal is *driven* by its first such literal:
# instances are generated exactly when the driver's atom derives (each
# derived atom is fresh exactly once, so each instance is generated
# exactly once), and instances still waiting on the rule's other
# intensional atoms are parked in the StreamingHorn until those derive.
# Rules whose driver predicate never derives are never instantiated at
# all -- that, together with magic-style head relevance and statically
# dead extensional literals, is the demand pruning measured by
# ``GroundingStats.rules_pruned``.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _StreamStep:
    """One extensional body literal, classified against the slot layout
    (static per program; interned/resolved per structure)."""

    kind: str  # "rel" | "builtin" | "neg" | "neg-builtin"
    predicate: str
    arity: int
    consts: tuple[tuple[int, object], ...]  # (pos, raw constant value)
    bound: tuple[tuple[int, int], ...]  # (pos, slot)
    free: tuple[tuple[int, int], ...]  # (pos, fresh slot)
    dups: tuple[tuple[int, int], ...]  # (pos, first-occurrence pos)


@dataclass(frozen=True)
class StreamRulePlan:
    """The static (per-program) half of one rule's streamed plan."""

    rule: Rule
    nslots: int
    #: the driving intensional body literal; ``None`` for base rules
    driver: Literal | None
    driver_consts: tuple[tuple[int, object], ...]  # (pos, raw value)
    driver_slots: tuple[tuple[int, int], ...]  # (pos, slot)
    driver_dups: tuple[tuple[int, int], ...]  # (pos, earlier pos)
    steps: tuple[_StreamStep, ...]
    #: (predicate, argsrc, raw consts): argsrc entries are slot indexes
    #: (>= 0) or ``-k-1`` references into the consts tuple
    head: tuple[str, tuple[int, ...], tuple]
    #: the non-driver intensional body literals, same encoding
    others: tuple[tuple[str, tuple[int, ...], tuple], ...]


def _stream_plan(
    rule: Rule,
    idb: frozenset[str],
    registry: BuiltinRegistry,
    cost: CostModel | None = None,
) -> StreamRulePlan:
    idb_literals: list[Literal] = []
    extensional: list[Literal] = []
    for literal in rule.body:
        if literal.atom.predicate in idb:
            if not literal.positive:
                raise NotGroundableError(
                    f"negated intensional atom {literal} unsupported"
                )
            idb_literals.append(literal)
        else:
            extensional.append(literal)

    slot_of: dict[Variable, int] = {}

    def slot(variable: Variable) -> int:
        found = slot_of.get(variable)
        if found is None:
            found = len(slot_of)
            slot_of[variable] = found
        return found

    driver = idb_literals[0] if idb_literals else None
    others = idb_literals[1:] if idb_literals else []
    driver_consts: list[tuple[int, object]] = []
    driver_slots: list[tuple[int, int]] = []
    driver_dups: list[tuple[int, int]] = []
    if driver is not None:
        first_pos: dict[Variable, int] = {}
        for pos, arg in enumerate(driver.atom.args):
            if isinstance(arg, Constant):
                driver_consts.append((pos, arg.value))
            elif arg in first_pos:
                driver_dups.append((pos, first_pos[arg]))
            else:
                first_pos[arg] = pos
                driver_slots.append((pos, slot(arg)))

    bound_vars = set(slot_of)
    ordered = _order_body(extensional, bound_vars, registry, rule, cost)
    needed = rule.variables()
    if not needed <= bound_vars:
        missing = sorted(v.name for v in needed - bound_vars)
        raise NotGroundableError(
            f"variables {missing} not bound by the extensional body of: {rule}"
        )

    steps: list[_StreamStep] = []
    for literal in ordered:
        atom = literal.atom
        consts: list[tuple[int, object]] = []
        bound: list[tuple[int, int]] = []
        free: list[tuple[int, int]] = []
        dups: list[tuple[int, int]] = []
        first_pos = {}
        for pos, arg in enumerate(atom.args):
            if isinstance(arg, Constant):
                consts.append((pos, arg.value))
            elif arg in first_pos:
                dups.append((pos, first_pos[arg]))
            elif arg in slot_of:
                bound.append((pos, slot_of[arg]))
            else:
                first_pos[arg] = pos
                free.append((pos, slot(arg)))
        if literal.positive:
            kind = "builtin" if atom.predicate in registry else "rel"
        else:
            if free or dups:
                raise NotGroundableError(
                    f"negated atom {atom} not bound during grounding"
                )
            kind = "neg-builtin" if atom.predicate in registry else "neg"
        steps.append(
            _StreamStep(
                kind,
                atom.predicate,
                atom.arity,
                tuple(consts),
                tuple(bound),
                tuple(free),
                tuple(dups),
            )
        )

    def emission_spec(atom: Atom) -> tuple[str, tuple[int, ...], tuple]:
        argsrc: list[int] = []
        const_values: list = []
        for arg in atom.args:
            if isinstance(arg, Constant):
                argsrc.append(-len(const_values) - 1)
                const_values.append(arg.value)
            else:
                argsrc.append(slot_of[arg])
        return (atom.predicate, tuple(argsrc), tuple(const_values))

    return StreamRulePlan(
        rule=rule,
        nslots=len(slot_of),
        driver=driver,
        driver_consts=tuple(driver_consts),
        driver_slots=tuple(driver_slots),
        driver_dups=tuple(driver_dups),
        steps=tuple(steps),
        head=emission_spec(rule.head),
        others=tuple(emission_spec(lit.atom) for lit in others),
    )


# compiled step opcodes (per-structure resolution of _StreamStep)
_OP_BITS = 0  # unary positive relation, bound slot: bitset test
_OP_SET = 1  # positive relation, fully bound: set membership
_OP_PROBE1 = 2  # index probe, single key position (bare-id key)
_OP_PROBE = 3  # index probe, multi-position key
_OP_SCAN = 4  # unrestricted scan / cross product
_OP_BUILTIN = 5  # builtin evaluation (decode in, intern out)
_OP_NEG_BITS = 6  # negated unary relation, bound slot
_OP_NEG_SET = 7  # negated relation, fully bound
_OP_NEG_BUILTIN = 8  # negated builtin, fully bound

_DEAD = object()  # sentinel: rule statically dead for this structure


class _CompiledStreamRule:
    """One rule's per-structure executable stream plan."""

    __slots__ = (
        "plan",
        "pool",
        "sink",
        "stats",
        "nslots",
        "driver_consts",
        "driver_slots",
        "driver_dups",
        "ops",
        "op_meta",
        "head",
        "others",
        "invoked",
        "finalize",
        "profile",
    )

    def __init__(
        self,
        plan,
        ops,
        head,
        others,
        driver_consts,
        pool,
        sink,
        stats,
        profile=None,
        op_meta=(),
    ):
        self.plan = plan
        self.pool = pool
        self.sink = sink
        self.stats = stats
        self.nslots = plan.nslots
        self.driver_consts = driver_consts  # (pos, interned id)
        self.driver_slots = plan.driver_slots
        self.driver_dups = plan.driver_dups
        self.ops = ops
        #: parallel to ``ops``: (predicate, sorted key positions) for
        #: index-probe ops, None otherwise -- profiling metadata only
        self.op_meta = op_meta
        self.head = head  # (predicate, argsrc, interned const ids)
        self.others = others
        self.invoked = False
        #: set by the deferred-sink epilogue of
        #: :func:`ground_program_streamed`: the fixpoint is complete, so
        #: ``_emit`` resolves the remaining intensional body atoms
        #: against the final model instead of parking the rule
        self.finalize = False
        self.profile = profile

    def fire(self, args: tuple[int, ...]) -> None:
        """Instantiate for one freshly derived driver atom."""
        self.fire_batch((args,))

    def fire_batch(self, batch) -> None:
        """Instantiate for a whole round's worth of driver atoms.

        One `_run` walks the op list for all of the round's rows
        together, so the per-event constants (op dispatch, handle
        loads, the emit prologue) are paid once per (rule, round)
        instead of once per derived driver atom -- the lever for
        fully-live programs like the grid cover DP, where every rule
        fires for nearly every node and the streamed emitter used to
        trail the eager batch pipeline on dispatch overhead alone.
        """
        self.invoked = True
        rows = []
        append = rows.append
        nslots = self.nslots
        driver_consts = self.driver_consts
        driver_dups = self.driver_dups
        driver_slots = self.driver_slots
        for args in batch:
            if driver_consts and any(
                args[pos] != cid for pos, cid in driver_consts
            ):
                continue
            if driver_dups and any(
                args[pos] != args[earlier] for pos, earlier in driver_dups
            ):
                continue
            row = [0] * nslots
            for pos, s in driver_slots:
                row[s] = args[pos]
            append(row)
        if rows:
            self._run(rows)

    def fire_base(self) -> None:
        """Instantiate a base rule (no intensional body literal)."""
        self.invoked = True
        self._run([[0] * self.nslots])

    def _run(self, rows: list[list[int]]) -> None:
        stats = self.stats
        profile = self.profile
        op_meta = self.op_meta
        for op_index, op in enumerate(self.ops):
            n_in = len(rows) if profile is not None else 0
            code = op[0]
            if code == _OP_BITS:
                _, bits, s = op
                rows = [r for r in rows if (bits >> r[s]) & 1]
            elif code == _OP_PROBE1:
                _, get, ksrc, free, dups = op
                out = []
                for r in rows:
                    matches = get(r[ksrc])
                    if not matches:
                        continue
                    for fact in matches:
                        if dups and any(
                            fact[p] != fact[q] for p, q in dups
                        ):
                            continue
                        fresh = r.copy()
                        for p, s in free:
                            fresh[s] = fact[p]
                        out.append(fresh)
                rows = out
            elif code == _OP_SET:
                _, rel, key_srcs = op
                rows = [
                    r
                    for r in rows
                    if tuple(
                        r[v] if is_slot else v for is_slot, v in key_srcs
                    )
                    in rel
                ]
            elif code == _OP_PROBE:
                _, get, key_srcs, free, dups = op
                out = []
                for r in rows:
                    matches = get(
                        tuple(
                            r[v] if is_slot else v
                            for is_slot, v in key_srcs
                        )
                    )
                    if not matches:
                        continue
                    for fact in matches:
                        if dups and any(
                            fact[p] != fact[q] for p, q in dups
                        ):
                            continue
                        fresh = r.copy()
                        for p, s in free:
                            fresh[s] = fact[p]
                        out.append(fresh)
                rows = out
            elif code == _OP_SCAN:
                _, facts, free, dups = op
                out = []
                for r in rows:
                    for fact in facts:
                        if dups and any(
                            fact[p] != fact[q] for p, q in dups
                        ):
                            continue
                        fresh = r.copy()
                        for p, s in free:
                            fresh[s] = fact[p]
                        out.append(fresh)
                rows = out
            elif code == _OP_BUILTIN:
                rows = self._builtin(op, rows)
            elif code == _OP_NEG_BITS:
                _, bits, s = op
                kept = [r for r in rows if not (bits >> r[s]) & 1]
                stats.killed_by_extensional += len(rows) - len(kept)
                rows = kept
            elif code == _OP_NEG_SET:
                _, rel, key_srcs = op
                kept = [
                    r
                    for r in rows
                    if tuple(
                        r[v] if is_slot else v for is_slot, v in key_srcs
                    )
                    not in rel
                ]
                stats.killed_by_extensional += len(rows) - len(kept)
                rows = kept
            else:  # _OP_NEG_BUILTIN
                _, builtin, pattern_srcs, value_of = op
                kept = [
                    r
                    for r in rows
                    if not any(
                        builtin.evaluate(
                            tuple(
                                value_of(r[v]) if is_slot else v
                                for is_slot, v in pattern_srcs
                            )
                        )
                    )
                ]
                stats.killed_by_extensional += len(rows) - len(kept)
                rows = kept
            if profile is not None:
                meta = op_meta[op_index]
                if meta is not None:
                    profile.record_probe(meta[0], meta[1], n_in, len(rows))
            if not rows:
                return
            stats.bindings_explored += len(rows)
        self._emit(rows)

    def _builtin(self, op, rows):
        # builtins see raw values: decode bound ids in, intern fresh
        # outputs (exactly as the eager forms do)
        _, builtin, pattern_srcs, free, dups, value_of, intern = op
        out = []
        for r in rows:
            pattern = tuple(
                value_of(r[v]) if is_slot else v
                for is_slot, v in pattern_srcs
            )
            for solution in builtin.evaluate(pattern):
                if dups and any(
                    solution[p] != solution[q] for p, q in dups
                ):
                    continue
                fresh = r.copy()
                for p, s in free:
                    fresh[s] = intern(solution[p])
                out.append(fresh)
        return out

    def _emit(self, rows: list[list[int]]) -> None:
        atom_id = self.pool.atom_id
        add_rule = self.sink.add_rule
        head_pred, head_src, head_consts = self.head
        others = self.others
        self.stats.ground_rules += len(rows)
        if others and self.finalize:
            # deferred-sink mode: the fixpoint below this rule's head
            # is already complete, so the remaining intensional body
            # atoms have their final truth -- check them against the
            # model (lookup_atom: an atom never interned was never
            # derived) and emit satisfied instances as facts; nothing
            # is ever parked in the waiting frontier
            lookup = self.pool.lookup_atom
            is_derived = self.sink.is_derived
            for r in rows:
                satisfied = True
                for pred, src, consts in others:
                    other = lookup(
                        pred,
                        tuple(
                            r[x] if x >= 0 else consts[-x - 1]
                            for x in src
                        ),
                    )
                    if other is None or not is_derived(other):
                        satisfied = False
                        break
                if not satisfied:
                    continue
                head = atom_id(
                    head_pred,
                    tuple(
                        r[x] if x >= 0 else head_consts[-x - 1]
                        for x in head_src
                    ),
                )
                add_rule(head, ())
            return
        for r in rows:
            head = atom_id(
                head_pred,
                tuple(
                    r[x] if x >= 0 else head_consts[-x - 1]
                    for x in head_src
                ),
            )
            if others:
                add_rule(
                    head,
                    tuple(
                        atom_id(
                            pred,
                            tuple(
                                r[x] if x >= 0 else consts[-x - 1]
                                for x in src
                            ),
                        )
                        for pred, src, consts in others
                    ),
                )
            else:
                add_rule(head, ())


def _compile_stream_rule(
    plan: StreamRulePlan,
    db: SetDatabase,
    pool: InternPool,
    registry: BuiltinRegistry,
    sink: StreamingHorn,
    stats: GroundingStats,
    profile: PlanProfile | None = None,
):
    """Resolve one plan against a structure: intern constants, fetch
    index/bitset/relation handles, statically resolve fully-constant
    steps.  Returns ``None`` when the rule is dead for this structure
    (a positive extensional literal can never hold)."""
    interner = db.interner
    intern = interner.intern
    value_of = interner.value_of
    ops: list[tuple] = []
    op_meta: list = []
    for step in plan.steps:
        # relation steps compare interned ids; builtin steps see raw
        # values, so their constants must NOT be interned (that would
        # grow the shared domain interner for nothing)
        if step.kind == "rel":
            consts = [(pos, intern(value)) for pos, value in step.consts]
            op = _compile_rel(step, consts, db)
        elif step.kind == "neg":
            consts = [(pos, intern(value)) for pos, value in step.consts]
            op = _compile_neg(step, consts, db)
        elif step.kind == "builtin":
            op = _compile_builtin(step, registry, value_of, intern)
        else:  # neg-builtin
            op = _compile_neg_builtin(step, registry, value_of)
        if op is _DEAD:
            return None
        if op is not None:
            ops.append(op)
            op_meta.append(
                (
                    step.predicate,
                    tuple(
                        sorted(
                            [p for p, _ in step.consts]
                            + [p for p, _ in step.bound]
                        )
                    ),
                )
                if op[0] in (_OP_PROBE1, _OP_PROBE)
                else None
            )

    def interned_spec(spec):
        predicate, argsrc, const_values = spec
        return (
            predicate,
            argsrc,
            tuple(intern(value) for value in const_values),
        )

    return _CompiledStreamRule(
        plan,
        tuple(ops),
        interned_spec(plan.head),
        tuple(interned_spec(spec) for spec in plan.others),
        tuple((pos, intern(value)) for pos, value in plan.driver_consts),
        pool,
        sink,
        stats,
        profile,
        tuple(op_meta),
    )


def _key_srcs(consts, bound):
    """(is_slot, value) pairs in sorted key-position order."""
    merged = [(pos, False, cid) for pos, cid in consts]
    merged += [(pos, True, s) for pos, s in bound]
    merged.sort()
    return tuple((is_slot, v) for _, is_slot, v in merged)


def _key_srcs_ordered(consts, bound, order):
    """(is_slot, value) pairs following an explicit probe key order
    (a shared lex index's chain column order)."""
    by_pos = {pos: (False, cid) for pos, cid in consts}
    by_pos.update({pos: (True, s) for pos, s in bound})
    return tuple(by_pos[p] for p in order)


def _compile_rel(step, consts, db: SetDatabase):
    arity = step.arity
    if not step.free and not step.dups:
        # fully determined: membership check
        if arity == 0:
            return None if () in db.relation(step.predicate) else _DEAD
        if arity == 1:
            bits = db.bits(step.predicate)
            if not bits:
                return _DEAD  # empty unary relation: can never hold
            if step.consts:
                return None if (bits >> consts[0][1]) & 1 else _DEAD
            return (_OP_BITS, bits, step.bound[0][1])
        rel = db.relation(step.predicate)
        if not rel:
            return _DEAD
        srcs = _key_srcs(consts, step.bound)
        if all(not is_slot for is_slot, _ in srcs):
            key = tuple(v for _, v in srcs)
            return None if key in rel else _DEAD
        return (_OP_SET, rel, srcs)
    # free variables: scan or index probe
    key_positions = tuple(
        sorted([pos for pos, _ in consts] + [pos for pos, _ in step.bound])
    )
    if not key_positions:
        facts = db.relation(step.predicate)
        if not facts:
            return _DEAD
        return (_OP_SCAN, tuple(facts), step.free, step.dups)
    if not db.relation(step.predicate):
        return _DEAD
    get, key_order = db.probe_plan(step.predicate, key_positions)
    if not step.bound:
        # constants-only key: resolve the probe now
        by_pos = {pos: cid for pos, cid in consts}
        if len(key_order) == 1:
            matches = get(by_pos[key_order[0]])
        else:
            matches = get(tuple(by_pos[pos] for pos in key_order))
        if not matches:
            return _DEAD
        return (_OP_SCAN, tuple(matches), step.free, step.dups)
    if len(key_order) == 1:
        return (_OP_PROBE1, get, step.bound[0][1], step.free, step.dups)
    return (
        _OP_PROBE,
        get,
        _key_srcs_ordered(consts, step.bound, key_order),
        step.free,
        step.dups,
    )


def _compile_neg(step, consts, db: SetDatabase):
    arity = step.arity
    if arity == 0:
        return _DEAD if () in db.relation(step.predicate) else None
    if arity == 1:
        bits = db.bits(step.predicate)
        if not bits:
            return None  # negating an empty relation always holds
        if step.consts:
            return _DEAD if (bits >> consts[0][1]) & 1 else None
        return (_OP_NEG_BITS, bits, step.bound[0][1])
    rel = db.relation(step.predicate)
    if not rel:
        return None
    srcs = _key_srcs(consts, step.bound)
    if all(not is_slot for is_slot, _ in srcs):
        key = tuple(v for _, v in srcs)
        return _DEAD if key in rel else None
    return (_OP_NEG_SET, rel, srcs)


def _pattern_srcs(step):
    """(is_slot, value) per argument position: raw consts, slots for
    bound vars, UNBOUND placeholders for free/dup positions."""
    srcs: list = [None] * step.arity
    for pos, value in step.consts:
        srcs[pos] = (False, value)
    for pos, s in step.bound:
        srcs[pos] = (True, s)
    for pos, _ in step.free:
        srcs[pos] = (False, UNBOUND)
    for pos, _ in step.dups:
        srcs[pos] = (False, UNBOUND)
    return tuple(srcs)


def _compile_builtin(step, registry, value_of, intern):
    builtin = registry.get(step.predicate)
    pattern_srcs = _pattern_srcs(step)
    if all(not is_slot for is_slot, _ in pattern_srcs) and not step.free:
        pattern = tuple(v for _, v in pattern_srcs)
        return None if any(builtin.evaluate(pattern)) else _DEAD
    return (
        _OP_BUILTIN,
        builtin,
        pattern_srcs,
        step.free,
        step.dups,
        value_of,
        intern,
    )


def _compile_neg_builtin(step, registry, value_of):
    builtin = registry.get(step.predicate)
    pattern_srcs = _pattern_srcs(step)
    if all(not is_slot for is_slot, _ in pattern_srcs):
        pattern = tuple(v for _, v in pattern_srcs)
        return _DEAD if any(builtin.evaluate(pattern)) else None
    return (_OP_NEG_BUILTIN, builtin, pattern_srcs, value_of)


def ground_program_streamed(
    prepared: PreparedGrounding,
    db: SetDatabase,
    pool: InternPool,
    sink: StreamingHorn | None = None,
    stats: GroundingStats | None = None,
    demand=None,
    relevant: frozenset[str] | None = None,
    meter=None,
    profile: PlanProfile | None = None,
) -> StreamingHorn:
    """Stream demand-pruned ground instances into an online LTUR.

    The push-based production form of Theorem 4.4: ground rules are
    emitted as they become *supported* (their driver atom derived) and
    consumed immediately by ``sink`` (a
    :class:`~repro.datalog.horn.StreamingHorn`, created on demand), so
    the full ground program is never materialized.  ``demand`` -- a
    query predicate name, query :class:`~repro.datalog.ast.Atom`, or
    iterable of predicate names -- additionally restricts grounding to
    rules whose heads can reach the demanded predicates
    (:func:`repro.datalog.magic.demanded_predicates`); the resulting
    model is exact for the demanded predicates and their relevance
    cone, and empty elsewhere.

    Returns the sink; the least model is ``sink.flags(len(pool))`` and
    the residency/pruning counters land in ``stats``.  Callers solving
    the same program over many structures should resolve the demand
    once via :func:`resolve_demand` and pass ``relevant=`` instead of
    re-deriving it per solve.

    ``meter`` (a :class:`repro.datalog.budget.BudgetMeter`) makes the
    fixpoint loop budget-cooperative: the caps are checked once per
    demand round (and, via the sink, every few thousand derivations
    inside a round), raising
    :class:`~repro.datalog.budget.BudgetExceeded` instead of letting a
    pathological structure run the process away.
    """
    if pool.interner is not db.interner:
        raise ValueError(
            "pool and database must share one interner -- the point of "
            "the interned pipeline is a single interning context per solve"
        )
    sink = sink if sink is not None else StreamingHorn()
    stats = stats if stats is not None else GroundingStats()
    if prepared.index_selection is not None:
        db.use_index_selection(prepared.index_selection)
    if meter is not None:
        sink.meter = meter
        meter.check(stats.ground_rules)
    if relevant is None:
        relevant = resolve_demand(prepared.program, demand, prepared.registry)

    base_rules: list[_CompiledStreamRule] = []
    driven: dict[str, list[_CompiledStreamRule]] = {}
    deferred_by_driver: dict[str, list[_CompiledStreamRule]] = {}
    defer_heads = prepared.deferred
    for rule, plan in zip(prepared.program.rules, prepared.stream_plans):
        if relevant is not None and rule.head.predicate not in relevant:
            stats.rules_pruned += 1
            continue
        compiled = _compile_stream_rule(
            plan, db, pool, prepared.registry, sink, stats, profile
        )
        if compiled is None:
            stats.rules_pruned += 1
            continue
        if plan.driver is None:
            base_rules.append(compiled)
        elif rule.head.predicate in defer_heads:
            # sink-headed rules feed nothing downstream: accumulate
            # their driver atoms and fire once after the fixpoint
            deferred_by_driver.setdefault(
                plan.driver.atom.predicate, []
            ).append(compiled)
        else:
            driven.setdefault(plan.driver.atom.predicate, []).append(
                compiled
            )

    for compiled in base_rules:
        compiled.fire_base()
    atom_of = pool.atom_of
    take_fresh = sink.take_fresh
    get_driven = driven.get
    get_deferred = deferred_by_driver.get
    deferred_batches: dict[str, list[tuple[int, ...]]] = {}
    rounds = 0
    while True:
        if meter is not None:
            meter.check(stats.ground_rules)
        fresh = take_fresh()
        if not fresh:
            break
        rounds += 1
        # batch the round's driver events per predicate, then hand each
        # driven rule its whole batch in one call: the rule's op list
        # is walked once per (rule, round) instead of once per event
        # (ROADMAP (f) -- the per-event constants were what kept the
        # streamed emitter behind eager on fully-live programs)
        batches: dict[str, list[tuple[int, ...]]] = {}
        for fresh_id in fresh:
            predicate, args = atom_of(fresh_id)
            if get_driven(predicate) is not None:
                batches.setdefault(predicate, []).append(args)
            if get_deferred(predicate) is not None:
                deferred_batches.setdefault(predicate, []).append(args)
        for predicate, batch in batches.items():
            for compiled in driven[predicate]:
                compiled.fire_batch(batch)
    # the single-pass epilogue: every deferred rule fires exactly once,
    # against all the driver atoms the whole fixpoint derived; the
    # model below the sinks is final, so finalize-mode emission checks
    # the remaining body atoms instead of parking ground rules
    if meter is not None and deferred_batches:
        meter.check(stats.ground_rules)
    for predicate, batch in deferred_batches.items():
        for compiled in deferred_by_driver[predicate]:
            compiled.finalize = True
            compiled.fire_batch(batch)
    for rules in (driven, deferred_by_driver):
        for group in rules.values():
            for compiled in group:
                if not compiled.invoked:
                    stats.rules_pruned += 1
    stats.peak_live_rules = max(
        stats.peak_live_rules, sink.peak_live_rules
    )
    if profile is not None:
        profile.record_sizes(db)
        profile.record_rounds(rounds)
    return sink


def resolve_demand(program, demand, registry=None):
    """Normalize a demand spec (query predicate name, query atom, or an
    iterable of either) into the relevant-predicate set, or ``None``
    for no pruning.  Per-program work -- resolve once and reuse across
    structures."""
    if demand is None:
        return None
    from .magic import demanded_predicates

    if isinstance(demand, (str, Atom)):
        return demanded_predicates(program, demand, registry)
    relevant: set[str] = set()
    for query in demand:
        relevant |= demanded_predicates(program, query, registry)
    return frozenset(relevant)


def evaluate_via_grounding(
    program: Program,
    db: "Database | Structure | SetDatabase",
    registry: BuiltinRegistry | None = None,
    stats: GroundingStats | None = None,
    prepared: PreparedGrounding | None = None,
) -> set[Fact]:
    """The Theorem 4.4 pipeline: ground, then linear-time Horn solving.

    Runs the interned pipeline (one shared :class:`InternPool` from
    load through decode) and decodes the derived model at the very end.
    Returns the derived intensional facts (the extensional database is
    unchanged and not repeated in the result).
    """
    if prepared is None:
        prepared = prepare_grounding(program, registry)
    sdb = db if isinstance(db, SetDatabase) else SetDatabase.from_edb(db)
    pool = InternPool(sdb.interner)
    rules = ground_program_ids(prepared, sdb, pool, stats)
    flags = horn_least_model_ids(rules, len(pool))
    decode = pool.decode_atom
    return {decode(i) for i, flag in enumerate(flags) if flag}
