"""Guard-driven grounding (the first half of Theorem 4.4).

For a quasi-guarded rule, instantiating the guard atom against the
database determines every variable of the rule (directly or through the
functional key constraints of ``A_td``), so the number of ground
instances is O(|A|) per rule and O(|P| * |A|) overall.  The extensional
part of each body -- positive atoms, negated atoms, built-ins -- is
resolved during grounding; what remains is a propositional Horn program
over the intensional atoms, which :func:`repro.datalog.horn.horn_least_model`
solves in linear time.

The same machinery, pointed at *every* candidate instantiation instead
of only the ones supported by the database, yields the fully
materialized ground program that Section 6's optimization (2) warns
about; that variant lives in the benchmark modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..structures.structure import Fact, Structure
from .ast import Atom, Constant, Literal, Program, Rule, Variable
from .builtins import UNBOUND, BuiltinRegistry, standard_registry
from .evaluate import Database, UnsafeRuleError, _extend_with_fact, _slots
from .horn import GroundRule, horn_least_model


class NotGroundableError(ValueError):
    """The extensional body part cannot bind all rule variables."""


@dataclass
class GroundingStats:
    ground_rules: int = 0
    killed_by_extensional: int = 0


@dataclass(frozen=True)
class PreparedGrounding:
    """Per-rule extensional join orders, computed once per program.

    Grounding the same compiled program over many structures (the
    Theorem 4.5 amortization) re-runs only the data-dependent half;
    the body-ordering half lives here and is cached by
    :class:`repro.datalog.backends.ProgramCache`.
    """

    program: Program
    registry: BuiltinRegistry
    #: parallel to ``program.rules``: (ordered extensional literals,
    #: intensional body literals)
    plans: tuple[tuple[tuple[Literal, ...], tuple[Literal, ...]], ...]


def prepare_grounding(
    program: Program, registry: BuiltinRegistry | None = None
) -> PreparedGrounding:
    """Order every rule's extensional body ahead of time."""
    registry = registry if registry is not None else standard_registry()
    idb = program.intensional_predicates()
    plans = tuple(
        tuple(map(tuple, _plan_extensional(rule, idb, registry)))
        for rule in program.rules
    )
    return PreparedGrounding(program, registry, plans)


def _plan_extensional(
    rule: Rule,
    idb: frozenset[str],
    registry: BuiltinRegistry,
) -> tuple[list[Literal], list[Literal]]:
    """Order the non-IDB body so each step runs with earlier bindings.

    Returns (ordered extensional steps, IDB literals).  Raises
    :class:`NotGroundableError` if the extensional part cannot bind
    every variable -- i.e. the rule is not groundable guard-first, which
    for the programs of this paper coincides with not being
    quasi-guarded.
    """
    idb_literals: list[Literal] = []
    remaining: list[Literal] = []
    for literal in rule.body:
        name = literal.atom.predicate
        if name in idb:
            if not literal.positive:
                raise NotGroundableError(
                    f"negated intensional atom {literal} unsupported"
                )
            idb_literals.append(literal)
        else:
            remaining.append(literal)

    bound: set[Variable] = set()
    ordered: list[Literal] = []

    def mask(atom: Atom) -> tuple[bool, ...]:
        return tuple(
            isinstance(a, Constant) or a in bound for a in atom.args
        )

    while remaining:
        chosen = None
        # prefer the relation atom with the most bound argument slots --
        # an unbound pick mid-join degenerates into a full-relation scan
        # and breaks the O(|P| * |A|) bound of Theorem 4.4.
        best_bound = -1
        for literal in remaining:
            atom = literal.atom
            if literal.positive and atom.predicate not in registry:
                score = sum(mask(atom))
                if score > best_bound:
                    best_bound = score
                    chosen = literal
        if chosen is None:
            for literal in remaining:
                atom = literal.atom
                if (
                    literal.positive
                    and atom.predicate in registry
                    and registry.get(atom.predicate).can_evaluate(mask(atom))
                ):
                    chosen = literal
                    break
        if chosen is None:
            for literal in remaining:
                if not literal.positive and all(mask(literal.atom)):
                    chosen = literal
                    break
        if chosen is None:
            raise NotGroundableError(f"cannot order extensional body of: {rule}")
        remaining.remove(chosen)
        bound.update(chosen.atom.variables())
        ordered.append(chosen)

    needed = rule.variables()
    if not needed <= bound:
        missing = sorted(v.name for v in needed - bound)
        raise NotGroundableError(
            f"variables {missing} not bound by the extensional body of: {rule}"
        )
    return ordered, idb_literals


def ground_program(
    program: Program,
    db: Database | Structure,
    registry: BuiltinRegistry | None = None,
    stats: GroundingStats | None = None,
    prepared: PreparedGrounding | None = None,
) -> list[GroundRule]:
    """All supported ground instances, as propositional Horn rules.

    Propositional atoms are :class:`repro.structures.structure.Fact`
    values of the intensional predicates.  ``prepared`` (from
    :func:`prepare_grounding`) skips re-ordering the rule bodies.
    """
    if isinstance(db, Structure):
        db = Database.from_structure(db)
    if prepared is None:
        prepared = prepare_grounding(program, registry)
    registry = prepared.registry
    stats = stats if stats is not None else GroundingStats()
    ground_rules: list[GroundRule] = []

    for rule, (ordered, idb_literals) in zip(
        prepared.program.rules, prepared.plans
    ):
        bindings: list[dict] = [{}]
        for literal in ordered:
            atom = literal.atom
            new_bindings: list[dict] = []
            if literal.positive and atom.predicate not in registry:
                for binding in bindings:
                    pattern = _slots(atom, binding)
                    for fact_args in db.match(atom.predicate, pattern):
                        extended = _extend_with_fact(binding, atom, fact_args)
                        if extended is not None:
                            new_bindings.append(extended)
            elif literal.positive:
                builtin = registry.get(atom.predicate)
                for binding in bindings:
                    pattern = _slots(atom, binding)
                    for solution in builtin.evaluate(pattern):
                        extended = _extend_with_fact(binding, atom, solution)
                        if extended is not None:
                            new_bindings.append(extended)
            else:
                for binding in bindings:
                    pattern = _slots(atom, binding)
                    if any(s is UNBOUND for s in pattern):
                        raise NotGroundableError(
                            f"negated atom {atom} not bound during grounding"
                        )
                    if atom.predicate in registry:
                        held = any(
                            registry.get(atom.predicate).evaluate(tuple(pattern))
                        )
                    else:
                        held = db.contains(atom.predicate, tuple(pattern))
                    if held:
                        stats.killed_by_extensional += 1
                    else:
                        new_bindings.append(binding)
            bindings = new_bindings
            if not bindings:
                break

        for binding in bindings:
            substitution = {v: Constant(val) for v, val in binding.items()}
            head = rule.head.substitute(substitution).to_fact()
            body = tuple(
                lit.atom.substitute(substitution).to_fact()
                for lit in idb_literals
            )
            ground_rules.append(GroundRule(head, body))
            stats.ground_rules += 1
    return ground_rules


def evaluate_via_grounding(
    program: Program,
    db: Database | Structure,
    registry: BuiltinRegistry | None = None,
    stats: GroundingStats | None = None,
    prepared: PreparedGrounding | None = None,
) -> set[Fact]:
    """The Theorem 4.4 pipeline: ground, then linear-time Horn solving.

    Returns the derived intensional facts (the extensional database is
    unchanged and not repeated in the result).
    """
    rules = ground_program(program, db, registry, stats, prepared=prepared)
    return set(horn_least_model(rules))
