"""Guard-driven grounding (the first half of Theorem 4.4).

For a quasi-guarded rule, instantiating the guard atom against the
database determines every variable of the rule (directly or through the
functional key constraints of ``A_td``), so the number of ground
instances is O(|A|) per rule and O(|P| * |A|) overall.  The extensional
part of each body -- positive atoms, negated atoms, built-ins -- is
resolved during grounding; what remains is a propositional Horn program
over the intensional atoms, which :func:`repro.datalog.horn.horn_least_model`
solves in linear time.

The same machinery, pointed at *every* candidate instantiation instead
of only the ones supported by the database, yields the fully
materialized ground program that Section 6's optimization (2) warns
about; that variant lives in the benchmark modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import repeat
from typing import Sequence

from ..structures.structure import Fact, Structure
from .ast import Atom, Constant, Literal, Program, Rule, Variable
from .builtins import UNBOUND, BuiltinRegistry, standard_registry
from .evaluate import Database
from .horn import GroundRule, horn_least_model


class NotGroundableError(ValueError):
    """The extensional body part cannot bind all rule variables."""


@dataclass
class GroundingStats:
    ground_rules: int = 0
    killed_by_extensional: int = 0
    #: total rows surviving each extensional join step -- the
    #: O(|P| * |A|) *work* measure of Theorem 4.4 (a mis-ordered plan
    #: shows up here as a super-linear blow-up even when the final
    #: ground-rule count stays linear)
    bindings_explored: int = 0


@dataclass(frozen=True)
class PreparedGrounding:
    """Per-rule extensional join orders, computed once per program.

    Grounding the same compiled program over many structures (the
    Theorem 4.5 amortization) re-runs only the data-dependent half;
    the body-ordering half lives here and is cached by
    :class:`repro.datalog.backends.ProgramCache`.
    """

    program: Program
    registry: BuiltinRegistry
    #: parallel to ``program.rules``: (ordered extensional literals,
    #: intensional body literals)
    plans: tuple[tuple[tuple[Literal, ...], tuple[Literal, ...]], ...]


def prepare_grounding(
    program: Program, registry: BuiltinRegistry | None = None
) -> PreparedGrounding:
    """Order every rule's extensional body ahead of time."""
    registry = registry if registry is not None else standard_registry()
    idb = program.intensional_predicates()
    plans = tuple(
        tuple(map(tuple, _plan_extensional(rule, idb, registry)))
        for rule in program.rules
    )
    return PreparedGrounding(program, registry, plans)


def _plan_extensional(
    rule: Rule,
    idb: frozenset[str],
    registry: BuiltinRegistry,
) -> tuple[list[Literal], list[Literal]]:
    """Order the non-IDB body so each step runs with earlier bindings.

    Returns (ordered extensional steps, IDB literals).  Raises
    :class:`NotGroundableError` if the extensional part cannot bind
    every variable -- i.e. the rule is not groundable guard-first, which
    for the programs of this paper coincides with not being
    quasi-guarded.
    """
    idb_literals: list[Literal] = []
    remaining: list[Literal] = []
    for literal in rule.body:
        name = literal.atom.predicate
        if name in idb:
            if not literal.positive:
                raise NotGroundableError(
                    f"negated intensional atom {literal} unsupported"
                )
            idb_literals.append(literal)
        else:
            remaining.append(literal)

    bound: set[Variable] = set()
    ordered: list[Literal] = []

    def mask(atom: Atom) -> tuple[bool, ...]:
        return tuple(
            isinstance(a, Constant) or a in bound for a in atom.args
        )

    while remaining:
        chosen = None
        # prefer the relation atom with the most bound argument slots --
        # an unbound pick mid-join degenerates into a full-relation scan
        # and breaks the O(|P| * |A|) bound of Theorem 4.4.
        best_bound = -1
        for literal in remaining:
            atom = literal.atom
            if literal.positive and atom.predicate not in registry:
                score = sum(mask(atom))
                if score > best_bound:
                    best_bound = score
                    chosen = literal
        if chosen is None:
            for literal in remaining:
                atom = literal.atom
                if (
                    literal.positive
                    and atom.predicate in registry
                    and registry.get(atom.predicate).can_evaluate(mask(atom))
                ):
                    chosen = literal
                    break
        if chosen is None:
            for literal in remaining:
                if not literal.positive and all(mask(literal.atom)):
                    chosen = literal
                    break
        if chosen is None:
            raise NotGroundableError(f"cannot order extensional body of: {rule}")
        remaining.remove(chosen)
        bound.update(chosen.atom.variables())
        ordered.append(chosen)

    needed = rule.variables()
    if not needed <= bound:
        missing = sorted(v.name for v in needed - bound)
        raise NotGroundableError(
            f"variables {missing} not bound by the extensional body of: {rule}"
        )
    return ordered, idb_literals


def ground_program(
    program: Program,
    db: Database | Structure,
    registry: BuiltinRegistry | None = None,
    stats: GroundingStats | None = None,
    prepared: PreparedGrounding | None = None,
) -> list[GroundRule]:
    """All supported ground instances, as propositional Horn rules.

    Propositional atoms are :class:`repro.structures.structure.Fact`
    values of the intensional predicates.  ``prepared`` (from
    :func:`prepare_grounding`) skips re-ordering the rule bodies.
    """
    if isinstance(db, Structure):
        db = Database.from_structure(db)
    if prepared is None:
        prepared = prepare_grounding(program, registry)
    registry = prepared.registry
    stats = stats if stats is not None else GroundingStats()
    ground_rules: list[GroundRule] = []

    for rule, (ordered, idb_literals) in zip(
        prepared.program.rules, prepared.plans
    ):
        columns, length = _instantiate_batch(
            ordered, db, registry, stats
        )
        if not length:
            continue

        # build the propositional rules straight off the columns: no
        # per-binding substitution dict, no Atom.substitute round-trip
        def arg_rows(atom: Atom):
            if not atom.args:
                return repeat((), length)
            sources = [
                repeat(arg.value, length)
                if isinstance(arg, Constant)
                else columns[arg]
                for arg in atom.args
            ]
            return zip(*sources)

        head_predicate = rule.head.predicate
        body_predicates = [lit.atom.predicate for lit in idb_literals]
        body_rows = [arg_rows(lit.atom) for lit in idb_literals]
        for head_args, *body_args in zip(arg_rows(rule.head), *body_rows):
            body = tuple(
                Fact(predicate, args)
                for predicate, args in zip(body_predicates, body_args)
            )
            ground_rules.append(
                GroundRule(Fact(head_predicate, head_args), body)
            )
        stats.ground_rules += length
    return ground_rules


def _instantiate_batch(
    ordered: Sequence[Literal],
    db: Database,
    registry: BuiltinRegistry,
    stats: GroundingStats,
) -> tuple[dict[Variable, list], int]:
    """Run one rule's extensional join order set-at-a-time.

    The bindings live in a columnar batch (variable -> parallel value
    list, as in :mod:`repro.datalog.setengine` but over raw values --
    grounding happens before interning).  Each literal classifies its
    argument positions once, fetches one incrementally-maintained
    index from the database, and probes it per row, instead of
    re-resolving pattern and index per binding.

    NOTE: the join branches below deliberately mirror the interned
    kernel in ``setengine._join`` / ``_builtin`` / ``_negate``
    (classification, dup filters, semi-join vs index-probe split).  A
    semantics fix in one must be applied to the other, or this path
    silently diverges from the default backend.
    """
    columns: dict[Variable, list] = {}
    length = 1  # the unit batch: one empty binding
    for literal in ordered:
        atom = literal.atom
        consts: list[tuple[int, object]] = []
        bound: list[tuple[int, Variable]] = []
        free: list[tuple[int, Variable]] = []
        dups: list[tuple[int, int]] = []
        first_pos: dict[Variable, int] = {}
        for pos, arg in enumerate(atom.args):
            if isinstance(arg, Constant):
                consts.append((pos, arg.value))
            elif arg in columns:
                bound.append((pos, arg))
            elif arg in first_pos:
                dups.append((pos, first_pos[arg]))
            else:
                first_pos[arg] = pos
                free.append((pos, arg))

        if literal.positive and atom.predicate not in registry:
            columns, length = _join_relation(
                columns, length, atom, consts, bound, free, dups, db
            )
        elif literal.positive:
            columns, length = _join_builtin(
                columns,
                length,
                atom,
                consts,
                bound,
                free,
                dups,
                registry.get(atom.predicate),
            )
        else:
            if free or dups:
                raise NotGroundableError(
                    f"negated atom {atom} not bound during grounding"
                )
            columns, length = _filter_negation(
                columns, length, atom, consts, bound, db, registry, stats
            )
        stats.bindings_explored += length
        if not length:
            break
    return columns, length


def _join_relation(
    columns, length, atom, consts, bound, free, dups, db: Database
):
    key_positions = tuple(
        sorted([pos for pos, _ in consts] + [pos for pos, _ in bound])
    )
    arity = atom.arity
    if not free and not dups:
        # semi-join: candidate fact tuples are fully determined
        rel = db.relation(atom.predicate)
        sources = [None] * arity
        for pos, value in consts:
            sources[pos] = repeat(value, length)
        for pos, var in bound:
            sources[pos] = columns[var]
        if arity == 0:
            keep = range(length) if () in rel else []
        else:
            keep = [
                r
                for r, key in enumerate(zip(*sources))
                if key in rel
            ]
        return _take_rows(columns, keep), len(keep)

    out_columns = {v: [] for v in columns}
    out_columns.update({var: [] for _, var in free})
    old = [(out_columns[v].append, columns[v]) for v in columns]
    new = [(out_columns[var].append, pos) for pos, var in free]
    count = 0

    if not key_positions:  # unrestricted scan / cross product
        facts = db.relation(atom.predicate)
        if dups:
            facts = [
                f for f in facts if all(f[p] == f[q] for p, q in dups)
            ]
        for r in range(length):
            for fact in facts:
                for append, col in old:
                    append(col[r])
                for append, pos in new:
                    append(fact[pos])
                count += 1
        return out_columns, count

    index = db.lookup(atom.predicate, key_positions)
    by_pos = {pos: value for pos, value in consts}
    for pos, var in bound:
        by_pos[pos] = columns[var]
    keys = zip(
        *(
            by_pos[pos]
            if isinstance(by_pos[pos], list)
            else repeat(by_pos[pos], length)
            for pos in key_positions
        )
    )
    get = index.get
    for r, key in enumerate(keys):
        matches = get(key)
        if not matches:
            continue
        if dups:
            matches = [
                f for f in matches if all(f[p] == f[q] for p, q in dups)
            ]
        for fact in matches:
            for append, col in old:
                append(col[r])
            for append, pos in new:
                append(fact[pos])
        count += len(matches)
    return out_columns, count


def _join_builtin(
    columns, length, atom, consts, bound, free, dups, builtin
):
    arity = atom.arity
    sources: list = [None] * arity
    for pos, value in consts:
        sources[pos] = repeat(value, length)
    for pos, var in bound:
        sources[pos] = columns[var]
    for pos, _ in free:
        sources[pos] = repeat(UNBOUND, length)
    for pos, _ in dups:
        sources[pos] = repeat(UNBOUND, length)
    patterns = zip(*sources) if arity else repeat((), length)

    out_columns = {v: [] for v in columns}
    out_columns.update({var: [] for _, var in free})
    old = [(out_columns[v].append, columns[v]) for v in columns]
    new = [(out_columns[var].append, pos) for pos, var in free]
    count = 0
    for r, pattern in enumerate(patterns):
        for solution in builtin.evaluate(pattern):
            if dups and not all(
                solution[p] == solution[q] for p, q in dups
            ):
                continue
            for append, col in old:
                append(col[r])
            for append, pos in new:
                append(solution[pos])
            count += 1
    return out_columns, count


def _filter_negation(
    columns, length, atom, consts, bound, db, registry, stats
):
    arity = atom.arity
    sources: list = [None] * arity
    for pos, value in consts:
        sources[pos] = repeat(value, length)
    for pos, var in bound:
        sources[pos] = columns[var]
    patterns = zip(*sources) if arity else repeat((), length)
    if atom.predicate in registry:
        builtin = registry.get(atom.predicate)
        held_flags = [
            bool(any(builtin.evaluate(pattern))) for pattern in patterns
        ]
    else:
        rel = db.relation(atom.predicate)
        held_flags = [pattern in rel for pattern in patterns]
    keep = [r for r, held in enumerate(held_flags) if not held]
    stats.killed_by_extensional += length - len(keep)
    return _take_rows(columns, keep), len(keep)


def _take_rows(columns: dict, keep) -> dict:
    if isinstance(keep, range):
        return columns
    return {v: [col[r] for r in keep] for v, col in columns.items()}


def evaluate_via_grounding(
    program: Program,
    db: Database | Structure,
    registry: BuiltinRegistry | None = None,
    stats: GroundingStats | None = None,
    prepared: PreparedGrounding | None = None,
) -> set[Fact]:
    """The Theorem 4.4 pipeline: ground, then linear-time Horn solving.

    Returns the derived intensional facts (the extensional database is
    unchanged and not repeated in the result).
    """
    rules = ground_program(program, db, registry, stats, prepared=prepared)
    return set(horn_least_model(rules))
