"""Guard-driven grounding (the first half of Theorem 4.4).

For a quasi-guarded rule, instantiating the guard atom against the
database determines every variable of the rule (directly or through the
functional key constraints of ``A_td``), so the number of ground
instances is O(|A|) per rule and O(|P| * |A|) overall.  The extensional
part of each body -- positive atoms, negated atoms, built-ins -- is
resolved during grounding; what remains is a propositional Horn program
over the intensional atoms, which :func:`repro.datalog.horn.horn_least_model`
solves in linear time.

The same machinery, pointed at *every* candidate instantiation instead
of only the ones supported by the database, yields the fully
materialized ground program that Section 6's optimization (2) warns
about; that variant lives in the benchmark modules.

Two execution forms share the per-rule plans of
:func:`prepare_grounding`:

* the **interned** form (:func:`ground_program_ids`, the production
  path of :class:`repro.core.quasi_guarded.QuasiGuardedEvaluator`):
  guard instantiation joins over a
  :class:`~repro.datalog.setengine.SetDatabase` of dense-int fact
  tuples and emits ground rules as ``(head_atom_id, body_atom_ids)``
  pairs drawn from a shared
  :class:`~repro.datalog.interning.InternPool` -- no raw-value tuple
  crosses the grounding -> horn boundary, and
  :func:`repro.datalog.horn.horn_least_model_ids` propagates over the
  same ids;
* the **raw-value** form (:func:`ground_program`): the original
  PR 2-era pipeline over value-level databases and
  :class:`~repro.structures.structure.Fact` atoms, retained as the
  ablation baseline for ``bench_datalog_engine.py``'s solver workloads
  and as the debugging-friendly API (ground rules you can read).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import repeat
from typing import Sequence

from ..structures.structure import Fact, Structure
from .ast import Atom, Constant, Literal, Program, Rule, Variable
from .builtins import UNBOUND, BuiltinRegistry, standard_registry
from .evaluate import Database
from .horn import GroundRule, horn_least_model, horn_least_model_ids
from .interning import InternPool
from .setengine import SetDatabase


class NotGroundableError(ValueError):
    """The extensional body part cannot bind all rule variables."""


@dataclass
class GroundingStats:
    ground_rules: int = 0
    killed_by_extensional: int = 0
    #: total rows surviving each extensional join step -- the
    #: O(|P| * |A|) *work* measure of Theorem 4.4 (a mis-ordered plan
    #: shows up here as a super-linear blow-up even when the final
    #: ground-rule count stays linear)
    bindings_explored: int = 0


@dataclass(frozen=True)
class PreparedGrounding:
    """Per-rule extensional join orders, computed once per program.

    Grounding the same compiled program over many structures (the
    Theorem 4.5 amortization) re-runs only the data-dependent half;
    the body-ordering half lives here and is cached by
    :class:`repro.datalog.backends.ProgramCache`.
    """

    program: Program
    registry: BuiltinRegistry
    #: parallel to ``program.rules``: (ordered extensional literals,
    #: intensional body literals)
    plans: tuple[tuple[tuple[Literal, ...], tuple[Literal, ...]], ...]


def prepare_grounding(
    program: Program, registry: BuiltinRegistry | None = None
) -> PreparedGrounding:
    """Order every rule's extensional body ahead of time."""
    registry = registry if registry is not None else standard_registry()
    idb = program.intensional_predicates()
    plans = tuple(
        tuple(map(tuple, _plan_extensional(rule, idb, registry)))
        for rule in program.rules
    )
    return PreparedGrounding(program, registry, plans)


def _plan_extensional(
    rule: Rule,
    idb: frozenset[str],
    registry: BuiltinRegistry,
) -> tuple[list[Literal], list[Literal]]:
    """Order the non-IDB body so each step runs with earlier bindings.

    Returns (ordered extensional steps, IDB literals).  Raises
    :class:`NotGroundableError` if the extensional part cannot bind
    every variable -- i.e. the rule is not groundable guard-first, which
    for the programs of this paper coincides with not being
    quasi-guarded.
    """
    idb_literals: list[Literal] = []
    remaining: list[Literal] = []
    for literal in rule.body:
        name = literal.atom.predicate
        if name in idb:
            if not literal.positive:
                raise NotGroundableError(
                    f"negated intensional atom {literal} unsupported"
                )
            idb_literals.append(literal)
        else:
            remaining.append(literal)

    bound: set[Variable] = set()
    ordered: list[Literal] = []

    def mask(atom: Atom) -> tuple[bool, ...]:
        return tuple(
            isinstance(a, Constant) or a in bound for a in atom.args
        )

    while remaining:
        chosen = None
        # prefer the relation atom with the most bound argument slots --
        # an unbound pick mid-join degenerates into a full-relation scan
        # and breaks the O(|P| * |A|) bound of Theorem 4.4.
        best_bound = -1
        for literal in remaining:
            atom = literal.atom
            if literal.positive and atom.predicate not in registry:
                score = sum(mask(atom))
                if score > best_bound:
                    best_bound = score
                    chosen = literal
        if chosen is None:
            for literal in remaining:
                atom = literal.atom
                if (
                    literal.positive
                    and atom.predicate in registry
                    and registry.get(atom.predicate).can_evaluate(mask(atom))
                ):
                    chosen = literal
                    break
        if chosen is None:
            for literal in remaining:
                if not literal.positive and all(mask(literal.atom)):
                    chosen = literal
                    break
        if chosen is None:
            raise NotGroundableError(f"cannot order extensional body of: {rule}")
        remaining.remove(chosen)
        bound.update(chosen.atom.variables())
        ordered.append(chosen)

    needed = rule.variables()
    if not needed <= bound:
        missing = sorted(v.name for v in needed - bound)
        raise NotGroundableError(
            f"variables {missing} not bound by the extensional body of: {rule}"
        )
    return ordered, idb_literals


def ground_program(
    program: Program,
    db: Database | Structure,
    registry: BuiltinRegistry | None = None,
    stats: GroundingStats | None = None,
    prepared: PreparedGrounding | None = None,
) -> list[GroundRule]:
    """All supported ground instances, as propositional Horn rules.

    The raw-value form: propositional atoms are
    :class:`repro.structures.structure.Fact` values of the intensional
    predicates.  ``prepared`` (from :func:`prepare_grounding`) skips
    re-ordering the rule bodies.  The production solve path uses the
    interned form (:func:`ground_program_ids`) instead; this one is the
    ablation baseline and the readable-output API.
    """
    if isinstance(db, Structure):
        db = Database.from_structure(db)
    if prepared is None:
        prepared = prepare_grounding(program, registry)
    registry = prepared.registry
    stats = stats if stats is not None else GroundingStats()
    ground_rules: list[GroundRule] = []

    for rule, (ordered, idb_literals) in zip(
        prepared.program.rules, prepared.plans
    ):
        columns, length = _instantiate_batch(
            ordered, db, registry, stats
        )
        if not length:
            continue

        # build the propositional rules straight off the columns: no
        # per-binding substitution dict, no Atom.substitute round-trip
        def arg_rows(atom: Atom):
            if not atom.args:
                return repeat((), length)
            sources = [
                repeat(arg.value, length)
                if isinstance(arg, Constant)
                else columns[arg]
                for arg in atom.args
            ]
            return zip(*sources)

        head_predicate = rule.head.predicate
        body_predicates = [lit.atom.predicate for lit in idb_literals]
        body_rows = [arg_rows(lit.atom) for lit in idb_literals]
        for head_args, *body_args in zip(arg_rows(rule.head), *body_rows):
            body = tuple(
                Fact(predicate, args)
                for predicate, args in zip(body_predicates, body_args)
            )
            ground_rules.append(
                GroundRule(Fact(head_predicate, head_args), body)
            )
        stats.ground_rules += length
    return ground_rules


def _instantiate_batch(
    ordered: Sequence[Literal],
    db: Database,
    registry: BuiltinRegistry,
    stats: GroundingStats,
) -> tuple[dict[Variable, list], int]:
    """Run one rule's extensional join order set-at-a-time.

    The bindings live in a columnar batch (variable -> parallel value
    list, as in :mod:`repro.datalog.setengine` but over raw values --
    grounding happens before interning).  Each literal classifies its
    argument positions once, fetches one incrementally-maintained
    index from the database, and probes it per row, instead of
    re-resolving pattern and index per binding.

    NOTE: the join branches below deliberately mirror the interned
    kernel in ``setengine._join`` / ``_builtin`` / ``_negate``
    (classification, dup filters, semi-join vs index-probe split).  A
    semantics fix in one must be applied to the other, or this path
    silently diverges from the default backend.
    """
    columns: dict[Variable, list] = {}
    length = 1  # the unit batch: one empty binding
    for literal in ordered:
        atom = literal.atom
        consts: list[tuple[int, object]] = []
        bound: list[tuple[int, Variable]] = []
        free: list[tuple[int, Variable]] = []
        dups: list[tuple[int, int]] = []
        first_pos: dict[Variable, int] = {}
        for pos, arg in enumerate(atom.args):
            if isinstance(arg, Constant):
                consts.append((pos, arg.value))
            elif arg in columns:
                bound.append((pos, arg))
            elif arg in first_pos:
                dups.append((pos, first_pos[arg]))
            else:
                first_pos[arg] = pos
                free.append((pos, arg))

        if literal.positive and atom.predicate not in registry:
            columns, length = _join_relation(
                columns, length, atom, consts, bound, free, dups, db
            )
        elif literal.positive:
            columns, length = _join_builtin(
                columns,
                length,
                atom,
                consts,
                bound,
                free,
                dups,
                registry.get(atom.predicate),
            )
        else:
            if free or dups:
                raise NotGroundableError(
                    f"negated atom {atom} not bound during grounding"
                )
            columns, length = _filter_negation(
                columns, length, atom, consts, bound, db, registry, stats
            )
        stats.bindings_explored += length
        if not length:
            break
    return columns, length


def _join_relation(
    columns, length, atom, consts, bound, free, dups, db: Database
):
    key_positions = tuple(
        sorted([pos for pos, _ in consts] + [pos for pos, _ in bound])
    )
    arity = atom.arity
    if not free and not dups:
        # semi-join: candidate fact tuples are fully determined
        rel = db.relation(atom.predicate)
        sources = [None] * arity
        for pos, value in consts:
            sources[pos] = repeat(value, length)
        for pos, var in bound:
            sources[pos] = columns[var]
        if arity == 0:
            keep = range(length) if () in rel else []
        else:
            keep = [
                r
                for r, key in enumerate(zip(*sources))
                if key in rel
            ]
        return _take_rows(columns, keep), len(keep)

    out_columns = {v: [] for v in columns}
    out_columns.update({var: [] for _, var in free})
    old = [(out_columns[v].append, columns[v]) for v in columns]
    new = [(out_columns[var].append, pos) for pos, var in free]
    count = 0

    if not key_positions:  # unrestricted scan / cross product
        facts = db.relation(atom.predicate)
        if dups:
            facts = [
                f for f in facts if all(f[p] == f[q] for p, q in dups)
            ]
        for r in range(length):
            for fact in facts:
                for append, col in old:
                    append(col[r])
                for append, pos in new:
                    append(fact[pos])
                count += 1
        return out_columns, count

    index = db.lookup(atom.predicate, key_positions)
    by_pos = {pos: value for pos, value in consts}
    for pos, var in bound:
        by_pos[pos] = columns[var]
    keys = zip(
        *(
            by_pos[pos]
            if isinstance(by_pos[pos], list)
            else repeat(by_pos[pos], length)
            for pos in key_positions
        )
    )
    get = index.get
    for r, key in enumerate(keys):
        matches = get(key)
        if not matches:
            continue
        if dups:
            matches = [
                f for f in matches if all(f[p] == f[q] for p, q in dups)
            ]
        for fact in matches:
            for append, col in old:
                append(col[r])
            for append, pos in new:
                append(fact[pos])
        count += len(matches)
    return out_columns, count


def _join_builtin(
    columns, length, atom, consts, bound, free, dups, builtin
):
    arity = atom.arity
    sources: list = [None] * arity
    for pos, value in consts:
        sources[pos] = repeat(value, length)
    for pos, var in bound:
        sources[pos] = columns[var]
    for pos, _ in free:
        sources[pos] = repeat(UNBOUND, length)
    for pos, _ in dups:
        sources[pos] = repeat(UNBOUND, length)
    patterns = zip(*sources) if arity else repeat((), length)

    out_columns = {v: [] for v in columns}
    out_columns.update({var: [] for _, var in free})
    old = [(out_columns[v].append, columns[v]) for v in columns]
    new = [(out_columns[var].append, pos) for pos, var in free]
    count = 0
    for r, pattern in enumerate(patterns):
        for solution in builtin.evaluate(pattern):
            if dups and not all(
                solution[p] == solution[q] for p, q in dups
            ):
                continue
            for append, col in old:
                append(col[r])
            for append, pos in new:
                append(solution[pos])
            count += 1
    return out_columns, count


def _filter_negation(
    columns, length, atom, consts, bound, db, registry, stats
):
    arity = atom.arity
    sources: list = [None] * arity
    for pos, value in consts:
        sources[pos] = repeat(value, length)
    for pos, var in bound:
        sources[pos] = columns[var]
    patterns = zip(*sources) if arity else repeat((), length)
    if atom.predicate in registry:
        builtin = registry.get(atom.predicate)
        held_flags = [
            bool(any(builtin.evaluate(pattern))) for pattern in patterns
        ]
    else:
        rel = db.relation(atom.predicate)
        held_flags = [pattern in rel for pattern in patterns]
    keep = [r for r, held in enumerate(held_flags) if not held]
    stats.killed_by_extensional += length - len(keep)
    return _take_rows(columns, keep), len(keep)


def _take_rows(columns: dict, keep) -> dict:
    if isinstance(keep, range):
        return columns
    return {v: [col[r] for r in keep] for v, col in columns.items()}


# ----------------------------------------------------------------------
# The interned form: joins over a SetDatabase of dense-int fact tuples,
# ground rules emitted as atom ids from a shared InternPool.  Mirrors
# the raw branches above step for step (and, like them, the kernels in
# setengine._join/_builtin/_negate); a semantics fix in one variant
# must be applied to the others.
# ----------------------------------------------------------------------


def ground_program_ids(
    prepared: PreparedGrounding,
    db: SetDatabase,
    pool: InternPool,
    stats: GroundingStats | None = None,
) -> list[tuple[int, tuple[int, ...]]]:
    """All supported ground instances, as ``(head_id, body_ids)`` pairs.

    The interned half of Theorem 4.4: ``db`` holds the extensional
    facts as dense-int tuples, ``pool`` (which must share ``db``'s
    interner) assigns dense ids to the ground intensional atoms, and
    the returned rules are pure integers -- ready for
    :func:`repro.datalog.horn.horn_least_model_ids` with no raw-value
    tuple crossing the boundary.
    """
    if pool.interner is not db.interner:
        raise ValueError(
            "pool and database must share one interner -- the point of "
            "the interned pipeline is a single interning context per solve"
        )
    registry = prepared.registry
    stats = stats if stats is not None else GroundingStats()
    intern = db.interner.intern
    ground_rules: list[tuple[int, tuple[int, ...]]] = []

    for rule, (ordered, idb_literals) in zip(
        prepared.program.rules, prepared.plans
    ):
        columns, length = _instantiate_batch_ids(ordered, db, registry, stats)
        if not length:
            continue

        def arg_rows(atom: Atom):
            if not atom.args:
                return repeat((), length)
            sources = [
                repeat(intern(arg.value), length)
                if isinstance(arg, Constant)
                else columns[arg]
                for arg in atom.args
            ]
            return zip(*sources)

        # one bulk-intern pass per atom column, then C-speed zips pair
        # head ids with body-id tuples -- no per-row Python
        head_ids = pool.atom_ids(rule.head.predicate, arg_rows(rule.head))
        if not idb_literals:
            ground_rules.extend(zip(head_ids, repeat(())))
        else:
            body_id_columns = [
                pool.atom_ids(lit.atom.predicate, arg_rows(lit.atom))
                for lit in idb_literals
            ]
            ground_rules.extend(zip(head_ids, zip(*body_id_columns)))
        stats.ground_rules += length
    return ground_rules


def _instantiate_batch_ids(
    ordered: Sequence[Literal],
    db: SetDatabase,
    registry: BuiltinRegistry,
    stats: GroundingStats,
) -> tuple[dict[Variable, list[int]], int]:
    """The interned twin of :func:`_instantiate_batch`: columns hold
    dense ids, relation steps probe the interned database's indexes,
    and only built-in steps touch raw values (decoded on the way in,
    fresh outputs interned on the way out, as in the set engine)."""
    columns: dict[Variable, list[int]] = {}
    length = 1  # the unit batch: one empty binding
    for literal in ordered:
        atom = literal.atom
        consts: list[tuple[int, object]] = []
        bound: list[tuple[int, Variable]] = []
        free: list[tuple[int, Variable]] = []
        dups: list[tuple[int, int]] = []
        first_pos: dict[Variable, int] = {}
        for pos, arg in enumerate(atom.args):
            if isinstance(arg, Constant):
                consts.append((pos, arg.value))
            elif arg in columns:
                bound.append((pos, arg))
            elif arg in first_pos:
                dups.append((pos, first_pos[arg]))
            else:
                first_pos[arg] = pos
                free.append((pos, arg))

        if literal.positive and atom.predicate not in registry:
            columns, length = _join_relation_ids(
                columns, length, atom, consts, bound, free, dups, db
            )
        elif literal.positive:
            columns, length = _join_builtin_ids(
                columns,
                length,
                atom,
                consts,
                bound,
                free,
                dups,
                registry.get(atom.predicate),
                db,
            )
        else:
            if free or dups:
                raise NotGroundableError(
                    f"negated atom {atom} not bound during grounding"
                )
            columns, length = _filter_negation_ids(
                columns, length, atom, consts, bound, db, registry, stats
            )
        stats.bindings_explored += length
        if not length:
            break
    return columns, length


def _join_relation_ids(
    columns, length, atom, consts, bound, free, dups, db: SetDatabase
):
    intern = db.interner.intern
    consts = [(pos, intern(value)) for pos, value in consts]
    key_positions = tuple(
        sorted([pos for pos, _ in consts] + [pos for pos, _ in bound])
    )
    arity = atom.arity
    if not free and not dups:
        # semi-join: candidate fact tuples are fully determined
        if arity == 0:
            keep = (
                range(length) if () in db.relation(atom.predicate) else []
            )
            return _take_rows(columns, keep), len(keep)
        if arity == 1:
            bits = db.bits(atom.predicate)
            if consts:
                keep = range(length) if (bits >> consts[0][1]) & 1 else []
            else:
                column = columns[bound[0][1]]
                keep = [
                    r for r in range(length) if (bits >> column[r]) & 1
                ]
            return _take_rows(columns, keep), len(keep)
        rel = db.relation(atom.predicate)
        sources = [None] * arity
        for pos, cid in consts:
            sources[pos] = repeat(cid, length)
        for pos, var in bound:
            sources[pos] = columns[var]
        keep = [
            r for r, key in enumerate(zip(*sources)) if key in rel
        ]
        return _take_rows(columns, keep), len(keep)

    out_columns = {v: [] for v in columns}
    out_columns.update({var: [] for _, var in free})
    old = [(out_columns[v].append, columns[v]) for v in columns]
    new = [(out_columns[var].append, pos) for pos, var in free]
    count = 0

    if not key_positions:  # unrestricted scan / cross product
        facts = db.relation(atom.predicate)
        if dups:
            facts = [
                f for f in facts if all(f[p] == f[q] for p, q in dups)
            ]
        if not columns and length == 1:  # unit batch (the guard step):
            # the scan IS the result -- transpose at C speed instead of
            # appending per cell
            facts = list(facts)
            if not facts:
                return out_columns, 0
            transposed = list(zip(*facts))
            return {
                var: list(transposed[pos]) for pos, var in free
            }, len(facts)
        for r in range(length):
            for fact in facts:
                for append, col in old:
                    append(col[r])
                for append, pos in new:
                    append(fact[pos])
                count += 1
        return out_columns, count

    index = db.index_for(atom.predicate, key_positions)
    by_pos = {pos: cid for pos, cid in consts}
    for pos, var in bound:
        by_pos[pos] = columns[var]
    if len(key_positions) == 1:
        # single-position SetDatabase indexes key on the bare id
        key_source = by_pos[key_positions[0]]
        keys = (
            key_source
            if isinstance(key_source, list)
            else repeat(key_source, length)
        )
    else:
        keys = zip(
            *(
                by_pos[pos]
                if isinstance(by_pos[pos], list)
                else repeat(by_pos[pos], length)
                for pos in key_positions
            )
        )
    get = index.get
    for r, key in enumerate(keys):
        matches = get(key)
        if not matches:
            continue
        if dups:
            matches = [
                f for f in matches if all(f[p] == f[q] for p, q in dups)
            ]
        for fact in matches:
            for append, col in old:
                append(col[r])
            for append, pos in new:
                append(fact[pos])
        count += len(matches)
    return out_columns, count


def _join_builtin_ids(
    columns, length, atom, consts, bound, free, dups, builtin, db: SetDatabase
):
    # built-ins see raw values: decode bound ids on the way in, intern
    # fresh outputs on the way out (exactly as setengine._builtin does)
    interner = db.interner
    value_of = interner.value_of
    intern = interner.intern
    arity = atom.arity
    sources: list = [None] * arity
    for pos, value in consts:
        sources[pos] = repeat(value, length)
    for pos, var in bound:
        sources[pos] = [value_of(i) for i in columns[var]]
    for pos, _ in free:
        sources[pos] = repeat(UNBOUND, length)
    for pos, _ in dups:
        sources[pos] = repeat(UNBOUND, length)
    patterns = zip(*sources) if arity else repeat((), length)

    out_columns = {v: [] for v in columns}
    out_columns.update({var: [] for _, var in free})
    old = [(out_columns[v].append, columns[v]) for v in columns]
    new = [(out_columns[var].append, pos) for pos, var in free]
    count = 0
    for r, pattern in enumerate(patterns):
        for solution in builtin.evaluate(pattern):
            if dups and not all(
                solution[p] == solution[q] for p, q in dups
            ):
                continue
            for append, col in old:
                append(col[r])
            for append, pos in new:
                append(intern(solution[pos]))
            count += 1
    return out_columns, count


def _filter_negation_ids(
    columns, length, atom, consts, bound, db: SetDatabase, registry, stats
):
    arity = atom.arity
    if atom.predicate in registry:
        builtin = registry.get(atom.predicate)
        value_of = db.interner.value_of
        sources: list = [None] * arity
        for pos, value in consts:
            sources[pos] = repeat(value, length)
        for pos, var in bound:
            sources[pos] = [value_of(i) for i in columns[var]]
        patterns = zip(*sources) if arity else repeat((), length)
        held_flags = [
            bool(any(builtin.evaluate(pattern))) for pattern in patterns
        ]
    elif arity == 1:
        bits = db.bits(atom.predicate)
        if consts:
            cid = db.interner.intern(consts[0][1])
            held_flags = [bool((bits >> cid) & 1)] * length
        else:
            column = columns[bound[0][1]]
            held_flags = [
                bool((bits >> column[r]) & 1) for r in range(length)
            ]
    else:
        intern = db.interner.intern
        rel = db.relation(atom.predicate)
        sources = [None] * arity
        for pos, value in consts:
            sources[pos] = repeat(intern(value), length)
        for pos, var in bound:
            sources[pos] = columns[var]
        patterns = zip(*sources) if arity else repeat((), length)
        held_flags = [pattern in rel for pattern in patterns]
    keep = [r for r, held in enumerate(held_flags) if not held]
    stats.killed_by_extensional += length - len(keep)
    return _take_rows(columns, keep), len(keep)


def evaluate_via_grounding(
    program: Program,
    db: "Database | Structure | SetDatabase",
    registry: BuiltinRegistry | None = None,
    stats: GroundingStats | None = None,
    prepared: PreparedGrounding | None = None,
) -> set[Fact]:
    """The Theorem 4.4 pipeline: ground, then linear-time Horn solving.

    Runs the interned pipeline (one shared :class:`InternPool` from
    load through decode) and decodes the derived model at the very end.
    Returns the derived intensional facts (the extensional database is
    unchanged and not repeated in the result).
    """
    if prepared is None:
        prepared = prepare_grounding(program, registry)
    sdb = db if isinstance(db, SetDatabase) else SetDatabase.from_edb(db)
    pool = InternPool(sdb.interner)
    rules = ground_program_ids(prepared, sdb, pool, stats)
    flags = horn_least_model_ids(rules, len(pool))
    decode = pool.decode_atom
    return {decode(i) for i, flag in enumerate(flags) if flag}
