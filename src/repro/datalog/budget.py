"""Cooperative solve budgets for the Theorem 4.4 pipeline.

The paper's guarantee is linear-time evaluation *for structures of
bounded treewidth*; outside that envelope MSO evaluation is
intractable, so a serving layer facing arbitrary inputs needs a way to
bound what one solve may consume without killing the worker that runs
it.  A :class:`SolveBudget` declares the caps, :meth:`SolveBudget.start`
arms a :class:`BudgetMeter`, and the fixpoint loops of
:func:`repro.datalog.grounding.ground_program_streamed` and
:class:`repro.datalog.horn.StreamingHorn` call :meth:`BudgetMeter.check`
cooperatively -- once per grounding round / every few thousand derived
atoms, never per tuple -- raising :class:`BudgetExceeded` (with the
partially-consumed budget attached) instead of dying by OOM kill or
wall-clock runaway.

The checks are *cooperative*: a single pathological extensional join
step can still overshoot between checkpoints.  The hard backstop is the
service layer's deadline enforcement (overdue workers are terminated
and the request fails with ``DeadlineExceeded``); the budget is the
graceful path that keeps the worker -- and its warm program cache --
alive.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

__all__ = ["BudgetExceeded", "BudgetMeter", "SolveBudget"]

try:  # resource is POSIX-only; memory caps degrade to no-ops elsewhere
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None

#: ``ru_maxrss`` unit: kilobytes on Linux, bytes on macOS
_RSS_TO_MB = 1.0 / (1024.0 * 1024.0) if sys.platform == "darwin" else 1.0 / 1024.0


def _peak_rss_mb() -> float | None:
    """Peak resident set size of this process in MB (``None`` where
    unavailable).  Peak -- not current -- which is exactly the quantity
    a "this worker must not exceed X MB" cap is about."""
    if resource is None:  # pragma: no cover - non-POSIX
        return None
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RSS_TO_MB


class BudgetExceeded(RuntimeError):
    """A solve overran its :class:`SolveBudget`.

    Raised *cooperatively* from a fixpoint-loop checkpoint -- the
    process is healthy, the partial work is simply abandoned.
    ``dimension`` names the cap that tripped (``"seconds"``,
    ``"ground_rules"`` or ``"memory_mb"``), ``limit`` its configured
    value, and ``consumed`` the measured consumption *at the
    checkpoint* across all dimensions (the partially-consumed budget).
    """

    def __init__(
        self,
        message: str,
        *,
        dimension: str = "unknown",
        limit: float | int | None = None,
        consumed: dict | None = None,
    ):
        super().__init__(message)
        self.dimension = dimension
        self.limit = limit
        self.consumed = consumed if consumed is not None else {}


@dataclass(frozen=True)
class SolveBudget:
    """Per-solve resource caps, enforced cooperatively.

    Any subset of the caps may be set; ``None`` means unlimited.
    ``max_seconds`` is wall-clock from :meth:`start`;
    ``max_ground_rules`` caps the instantiated ground program
    (:attr:`repro.datalog.grounding.GroundingStats.ground_rules`);
    ``max_memory_mb`` caps the *peak RSS of the solving process* --
    a worker-level guard, so set it above the process baseline.

    The budget object itself is immutable (and cheap to pickle across
    the service's process boundary); per-solve state lives in the
    :class:`BudgetMeter` that :meth:`start` returns.
    """

    max_seconds: float | None = None
    max_ground_rules: int | None = None
    max_memory_mb: float | None = None

    def __post_init__(self):
        for name in ("max_seconds", "max_ground_rules", "max_memory_mb"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")

    @property
    def unlimited(self) -> bool:
        return (
            self.max_seconds is None
            and self.max_ground_rules is None
            and self.max_memory_mb is None
        )

    def start(self) -> "BudgetMeter":
        """Arm a meter: the clock starts now."""
        return BudgetMeter(self)


class BudgetMeter:
    """One solve's running consumption against a :class:`SolveBudget`.

    ``check(ground_rules=...)`` raises :class:`BudgetExceeded` when a
    cap is tripped; callers that don't track ground rules (the Horn
    propagation loop) call ``check()`` bare and only the time/memory
    caps apply.  ``snapshot()`` reports consumption without raising.
    """

    __slots__ = ("budget", "started", "ground_rules")

    def __init__(self, budget: SolveBudget):
        self.budget = budget
        self.started = time.monotonic()
        self.ground_rules = 0

    def snapshot(self) -> dict:
        """Consumption so far, one entry per measured dimension."""
        consumed = {
            "seconds": round(time.monotonic() - self.started, 6),
            "ground_rules": self.ground_rules,
        }
        rss = _peak_rss_mb()
        if rss is not None:
            consumed["memory_mb"] = round(rss, 3)
        return consumed

    def _trip(self, dimension: str, limit, consumed_value) -> None:
        raise BudgetExceeded(
            f"solve budget exceeded: {dimension} {consumed_value} "
            f"over the limit of {limit}",
            dimension=dimension,
            limit=limit,
            consumed=self.snapshot(),
        )

    def check(self, ground_rules: int | None = None) -> None:
        """Raise :class:`BudgetExceeded` if any armed cap is tripped."""
        budget = self.budget
        if ground_rules is not None:
            self.ground_rules = ground_rules
        if budget.max_seconds is not None:
            elapsed = time.monotonic() - self.started
            if elapsed > budget.max_seconds:
                self._trip("seconds", budget.max_seconds, round(elapsed, 6))
        if (
            budget.max_ground_rules is not None
            and self.ground_rules > budget.max_ground_rules
        ):
            self._trip(
                "ground_rules", budget.max_ground_rules, self.ground_rules
            )
        if budget.max_memory_mb is not None:
            rss = _peak_rss_mb()
            if rss is not None and rss > budget.max_memory_mb:
                self._trip("memory_mb", budget.max_memory_mb, round(rss, 3))


def as_meter(budget) -> BudgetMeter | None:
    """Normalize a budget argument: ``None`` passes through, a
    :class:`SolveBudget` is armed now, an armed :class:`BudgetMeter`
    is used as-is (so one meter can span decompose -> encode -> solve)."""
    if budget is None:
        return None
    if isinstance(budget, SolveBudget):
        return None if budget.unlimited else budget.start()
    if isinstance(budget, BudgetMeter):
        return budget
    raise TypeError(
        f"expected SolveBudget, BudgetMeter or None, got {type(budget).__name__}"
    )
