"""Dense interning of domain elements and big-int bitset helpers.

Section 6 of the paper argues that the practical viability of the
monadic-datalog route depends on the constant factors of the
interpreter.  The set-at-a-time engine (:mod:`repro.datalog.setengine`)
gets its constant factors from one representation decision made here:
every constant of the extensional database is *interned* into a dense
integer id when the database is loaded, so

* facts become tuples of small ints (cheap to hash, cheap to compare),
* unary relations -- and monadic datalog's IDB predicates are all
  unary -- become Python big-int *bitsets*, where union, intersection,
  difference and membership run word-parallel in C.

The interner is bidirectional (id -> value is a list lookup) and
grows on demand: built-in predicates may create values that never
occurred in the input structure (e.g. the fixed-size sets of the
Section 5 programs), and those are interned on first sight.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from ..structures.structure import Fact

__all__ = [
    "Interner",
    "InternPool",
    "bitset_of",
    "iter_bits",
    "popcount",
]


class Interner:
    """A bidirectional value <-> dense-int-id mapping.

    Ids are handed out consecutively from 0, so a fresh structure's
    domain occupies the low bits of every bitset built against it.
    """

    __slots__ = ("_ids", "_values", "_identity")

    def __init__(self, values: Iterable[Hashable] = ()):
        self._ids: dict[Hashable, int] = {}
        self._values: list[Hashable] = []
        #: True while every allocated id decodes to itself (the dense
        #: non-negative-int-domain case); lets decoding skip the id ->
        #: value translation entirely.
        self._identity = True
        for value in values:
            self.intern(value)

    @classmethod
    def identity(cls, width: int) -> "Interner":
        """An interner pre-seeded with ``0..width-1`` mapping to
        themselves.  Loading a database whose constants are already
        dense non-negative ints through this makes interning -- and
        decoding -- the identity, so fact tuples are reused as-is."""
        interner = cls()
        interner._values = list(range(width))
        interner._ids = {i: i for i in range(width)}
        return interner

    @property
    def is_identity(self) -> bool:
        """True iff ``value_of(i) == i`` for every allocated id."""
        return self._identity

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._ids

    def intern(self, value: Hashable) -> int:
        """The id of ``value``, allocating a fresh dense id if new."""
        ids = self._ids
        found = ids.get(value)
        if found is not None:
            return found
        fresh = len(self._values)
        ids[value] = fresh
        self._values.append(value)
        if self._identity and value != fresh:
            self._identity = False
        return fresh

    def id_of(self, value: Hashable) -> int | None:
        """The id of ``value``, or ``None`` if it was never interned."""
        return self._ids.get(value)

    def value_of(self, ident: int) -> Hashable:
        """Invert :meth:`intern`; raises :class:`IndexError` for ids
        that were never allocated."""
        return self._values[ident]

    def values(self) -> Iterator[Hashable]:
        """All interned values in id order."""
        return iter(self._values)


class InternPool:
    """One solve's shared interning context: values *and* ground atoms.

    The Theorem 4.4 pipeline moves whole ground atoms across a module
    boundary (guard instantiation emits them, unit resolution consumes
    them).  The complexity argument of the paper assumes constant-time
    atom identity, so the pool couples the domain-value
    :class:`Interner` with a second dense-id layer for ground atoms:
    ``(predicate, interned-arg-id tuple)`` pairs become consecutive
    atom ids.  Grounding, Horn solving, and result decoding all share
    one pool per solve, so a fact is interned exactly once and the
    grounding -> horn boundary is pure integers -- no raw-value tuples,
    no re-hashing of structured atoms per propagation step.

    Decoding is lazy and allocation-free: :meth:`atom_of` is a list
    lookup, :meth:`decode_atom` translates arg ids back through the
    shared interner only when a caller actually asks for the value-level
    :class:`~repro.structures.structure.Fact`.
    """

    __slots__ = ("interner", "_atom_ids", "_atoms")

    def __init__(self, interner: Interner | None = None):
        self.interner = interner if interner is not None else Interner()
        self._atom_ids: dict[tuple[str, tuple[int, ...]], int] = {}
        self._atoms: list[tuple[str, tuple[int, ...]]] = []

    def __len__(self) -> int:
        """Number of distinct ground atoms interned so far."""
        return len(self._atoms)

    def atom_id(self, predicate: str, args: tuple[int, ...]) -> int:
        """The dense id of ``predicate(args)``; ``args`` are interned
        value ids.  Allocates a fresh id on first sight."""
        key = (predicate, args)
        ids = self._atom_ids
        found = ids.get(key)
        if found is None:
            found = len(self._atoms)
            ids[key] = found
            self._atoms.append(key)
        return found

    def atom_ids(
        self, predicate: str, rows: Iterable[tuple[int, ...]]
    ) -> list[int]:
        """Bulk :meth:`atom_id`: one id per row of arg-id tuples.

        The grounding emitter calls this once per (rule, atom) with the
        whole instantiation batch, so the dict probe loop runs with
        bound locals instead of a per-row method call."""
        ids = self._atom_ids
        atoms = self._atoms
        out: list[int] = []
        append = out.append
        for args in rows:
            key = (predicate, args)
            found = ids.get(key)
            if found is None:
                found = len(atoms)
                ids[key] = found
                atoms.append(key)
            append(found)
        return out

    def lookup_atom(self, predicate: str, args: tuple[int, ...]) -> int | None:
        """Like :meth:`atom_id` but never allocates: ``None`` for atoms
        that were never interned (membership tests on the decoded
        side must not grow the pool)."""
        return self._atom_ids.get((predicate, args))

    def atom_of(self, atom_id: int) -> tuple[str, tuple[int, ...]]:
        """Invert :meth:`atom_id` (still in interned-id space)."""
        return self._atoms[atom_id]

    def decode_atom(self, atom_id: int) -> Fact:
        """The value-level fact for an atom id (lazy decode boundary)."""
        predicate, args = self._atoms[atom_id]
        if self.interner.is_identity:
            return Fact(predicate, args)
        value_of = self.interner.value_of
        return Fact(predicate, tuple(value_of(i) for i in args))

    def unary_arg_ids(self, predicate: str, flags) -> list[int]:
        """The argument ids ``x`` with ``predicate(x)`` flagged true.

        ``flags`` is a 0/1 array indexed by atom id (the Horn model
        shape); the scan stays entirely in id space, so callers decode
        only the answers they asked for.  Raises :class:`ValueError`
        if a flagged fact of ``predicate`` is not unary -- silently
        truncating it would mask a compiler or program bug.
        """
        out: list[int] = []
        for atom_id, (pred, args) in enumerate(self._atoms):
            if pred != predicate or not flags[atom_id]:
                continue
            if len(args) != 1:
                raise ValueError(
                    f"unary_arg_ids({predicate!r}): fact "
                    f"{self.decode_atom(atom_id)} has arity "
                    f"{len(args)}, not 1"
                )
            out.append(args[0])
        return out


# ----------------------------------------------------------------------
# Bitset helpers.  A "bitset" is a plain Python int: bit i set <=> the
# element with interned id i is in the set.  Union/intersection/
# difference are |, &, & ~ on ints -- word-parallel, no Python loop.
# ----------------------------------------------------------------------


def bitset_of(ids: Iterable[int]) -> int:
    """The bitset containing exactly ``ids``."""
    bits = 0
    for i in ids:
        bits |= 1 << i
    return bits


def iter_bits(bits: int) -> Iterator[int]:
    """The set bit positions of ``bits``, ascending.

    Uses the lowest-set-bit trick, so the cost is proportional to the
    number of *set* bits, not the width of the word.
    """
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def popcount(bits: int) -> int:
    """|S| for a bitset."""
    return bits.bit_count()
