"""A small textual syntax for datalog programs.

Grammar (classic Prolog-ish):

    program  := (rule | fact)*
    rule     := atom ":-" literal ("," literal)* "."
    fact     := atom "."
    literal  := ["not"] atom | term op term
    atom     := ident "(" term ("," term)* ")" | ident
    term     := variable | ident | number | quoted string
    op       := "=" | "!=" | "<" | "<="

Identifiers starting with an upper-case letter or ``_`` are variables;
everything else is a constant.  ``%`` starts a line comment.  The infix
operators desugar to the ``eq/neq/lt/le`` built-ins.

The Section 5 programs are constructed programmatically (their constants
are frozensets), but the parser makes the engine pleasant to use
standalone and is exercised heavily in tests.
"""

from __future__ import annotations

import re
from typing import Iterator

from .ast import Atom, Constant, Literal, Program, Rule, Term, Variable

_TOKEN = re.compile(
    r"""
    (?P<ws>\s+|%[^\n]*)
  | (?P<arrow>:-)
  | (?P<op><=|!=|=|<)
  | (?P<punct>[(),.])
  | (?P<number>-?\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
    """,
    re.VERBOSE,
)

_OP_NAMES = {"=": "eq", "!=": "neq", "<": "lt", "<=": "le"}


class ParseError(ValueError):
    pass


def _tokenize(text: str) -> Iterator[tuple[str, str]]:
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if not match:
            raise ParseError(f"unexpected character {text[pos]!r} at {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        yield kind, match.group()
    yield "eof", ""


class _Parser:
    def __init__(self, text: str):
        self.tokens = list(_tokenize(text))
        self.pos = 0

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def take(self, kind: str | None = None, value: str | None = None) -> str:
        k, v = self.tokens[self.pos]
        if kind is not None and k != kind:
            raise ParseError(f"expected {kind}, found {k} {v!r}")
        if value is not None and v != value:
            raise ParseError(f"expected {value!r}, found {v!r}")
        self.pos += 1
        return v

    def at(self, kind: str, value: str | None = None) -> bool:
        k, v = self.tokens[self.pos]
        return k == kind and (value is None or v == value)

    # -- grammar --------------------------------------------------------

    def program(self) -> list[Rule]:
        rules = []
        while not self.at("eof"):
            rules.append(self.rule())
        return rules

    def rule(self) -> Rule:
        head = self.atom()
        body: list[Literal] = []
        if self.at("arrow"):
            self.take("arrow")
            body.append(self.literal())
            while self.at("punct", ","):
                self.take("punct", ",")
                body.append(self.literal())
        self.take("punct", ".")
        return Rule(head, tuple(body))

    def literal(self) -> Literal:
        if self.at("ident", "not"):
            self.take("ident", "not")
            return Literal(self.atom_or_comparison(), False)
        return Literal(self.atom_or_comparison(), True)

    def atom_or_comparison(self) -> Atom:
        # could be  term op term  or a regular atom
        start = self.pos
        kind, _ = self.peek()
        if kind in ("number", "string"):
            left = self.term()
            op = self.take("op")
            right = self.term()
            return Atom(_OP_NAMES[op], (left, right))
        atom = self.atom()
        if self.at("op"):
            # it was actually a bare term followed by an operator
            if atom.args:
                raise ParseError("comparison operand cannot have arguments")
            self.pos = start
            left = self.term()
            op = self.take("op")
            right = self.term()
            return Atom(_OP_NAMES[op], (left, right))
        return atom

    def atom(self) -> Atom:
        name = self.take("ident")
        args: list[Term] = []
        if self.at("punct", "("):
            self.take("punct", "(")
            args.append(self.term())
            while self.at("punct", ","):
                self.take("punct", ",")
                args.append(self.term())
            self.take("punct", ")")
        return Atom(name, tuple(args))

    def term(self) -> Term:
        kind, value = self.peek()
        if kind == "ident":
            self.take()
            if value[0].isupper() or value[0] == "_":
                return Variable(value)
            return Constant(value)
        if kind == "number":
            self.take()
            return Constant(int(value))
        if kind == "string":
            self.take()
            return Constant(value[1:-1].replace('\\"', '"').replace("\\\\", "\\"))
        raise ParseError(f"expected a term, found {kind} {value!r}")


def parse_program(text: str, builtin_names: tuple[str, ...] = ()) -> Program:
    """Parse a program; comparison operators register their built-ins."""
    rules = _Parser(text).program()
    used_ops = {
        literal.atom.predicate
        for rule in rules
        for literal in rule.body
        if literal.atom.predicate in _OP_NAMES.values()
    }
    return Program(rules, builtin_names=tuple(set(builtin_names) | used_ops))


def parse_rule(text: str) -> Rule:
    rules = _Parser(text).program()
    if len(rules) != 1:
        raise ParseError(f"expected exactly one rule, found {len(rules)}")
    return rules[0]


def parse_atom(text: str) -> Atom:
    parser = _Parser(text)
    atom = parser.atom()
    parser.take("eof")
    return atom
