"""Post-minimization program-shrinking passes (ROADMAP D).

Two independently toggleable optimizations run after the Theorem 4.5
compiler's Myhill-Nerode minimization, named by the ``passes`` tuple
threaded through :class:`~repro.core.solver.CourcelleSolver` and the
compiled-program cache:

* ``"fold"`` -- ⊥-insensitive class folding: merge minimized classes
  whose observable differences are confined to *unrealized* step
  entries (permutations, replacements, or glue pairs the
  ``structure_filter`` rejected).  The partition machinery lives in
  :func:`repro.core.typealg.fold_partition`; the compiler drives it.
  This module only names the pass.

* ``"unfold"`` -- boundedness-based recursion elimination, following
  Mazowiecki-Ochremiak-Witkowski ("Eliminating Recursion from Monadic
  Datalog Programs on Trees"): :func:`bounded_predicates` detects
  predicates whose derivation depth is bounded by a constant
  independent of the input structure (no path in the IDB dependency
  graph from the predicate reaches a cycle), and
  :func:`eliminate_recursion` unfolds single-rule bounded predicates
  into their consumers, leaving nonrecursive rules.  Enabling the pass
  also routes evaluation through the single-pass (fire-once /
  deferred-sink) fast paths of :mod:`repro.datalog.evaluate`,
  :mod:`repro.datalog.setengine` and
  :mod:`repro.datalog.grounding` -- nonrecursive strata skip the
  delta-iteration bookkeeping entirely.

The generic Theorem 4.5 programs are *honestly* recursive -- the
identity permutation gives every Θ↑/Θ↓ class a self-loop, so
:func:`bounded_predicates` reports nothing for them and
:func:`eliminate_recursion` is a no-op; their single-pass gain comes
from the SCC-refined strata (``phi`` and every nonrecursive synthetic
predicate land in fire-once strata).  Hand-written programs with
genuinely bounded predicates shrink outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence

from .ast import Atom, Literal, Program, Rule, Variable

#: every pass the pipeline knows, in application order
KNOWN_PASSES = ("fold", "unfold")

#: the production default: both passes on (``passes=()`` is the
#: retained ablation, like ``minimize=False``)
DEFAULT_PASSES = ("fold", "unfold")

__all__ = [
    "DEFAULT_PASSES",
    "KNOWN_PASSES",
    "UnfoldReport",
    "bounded_predicates",
    "eliminate_recursion",
    "normalize_passes",
    "strongly_connected_components",
]


def normalize_passes(passes: Sequence[str] | None) -> tuple[str, ...]:
    """Validate and canonicalize a ``passes`` configuration.

    ``None`` means the production default; anything else is kept in
    :data:`KNOWN_PASSES` application order (input order and duplicates
    do not matter).  Raises :class:`ValueError` on unknown names so a
    typo cannot silently disable an optimization.
    """
    if passes is None:
        return DEFAULT_PASSES
    requested = set(passes)
    unknown = requested - set(KNOWN_PASSES)
    if unknown:
        raise ValueError(
            f"unknown passes {sorted(unknown)}; known: {KNOWN_PASSES}"
        )
    return tuple(p for p in KNOWN_PASSES if p in requested)


def strongly_connected_components(
    nodes: Iterable[Hashable],
    successors: Callable[[Hashable], Iterable[Hashable]],
) -> list[tuple[Hashable, ...]]:
    """Tarjan's algorithm, iteratively (no recursion-depth limit).

    Components come out in *reverse topological* order: every edge of
    the condensation goes from a later component to an earlier one, so
    dependencies precede their dependents in the returned list --
    exactly the evaluation order a stratified fixpoint wants.
    """
    index: dict[Hashable, int] = {}
    lowlink: dict[Hashable, int] = {}
    on_stack: set[Hashable] = set()
    stack: list[Hashable] = []
    components: list[tuple[Hashable, ...]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        # each frame: (node, iterator over its successors)
        work = [(root, iter(successors(root)))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    if index[succ] < lowlink[node]:
                        lowlink[node] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member is node or member == node:
                        break
                components.append(tuple(component))
    return components


def _idb_dependencies(program: Program) -> dict[str, set[str]]:
    """head predicate -> IDB predicates (either polarity) in its bodies."""
    idb = program.intensional_predicates()
    deps: dict[str, set[str]] = {p: set() for p in idb}
    for rule in program.rules:
        head = deps[rule.head.predicate]
        for literal in rule.body:
            name = literal.atom.predicate
            if name in idb:
                head.add(name)
    return deps


def bounded_predicates(program: Program) -> dict[str, int]:
    """The bounded IDB predicates with their derivation-depth bounds.

    A predicate ``P`` is *bounded* when the depth of every derivation
    tree for a ``P``-fact is at most a constant independent of the
    input structure (Mazowiecki-Ochremiak-Witkowski).  Detected
    syntactically and soundly: ``P`` is bounded iff no path in the IDB
    dependency graph from ``P`` reaches a cycle; the bound is the
    longest dependency chain (an EDB-only rule contributes depth 1).
    Every naive fixpoint then stabilizes ``P`` within ``depth(P)``
    rounds on *every* database -- the property the hypothesis suite
    cross-checks by brute force.

    The detector is deliberately incomplete (boundedness is undecidable
    in general; even the decidable monadic-over-trees case of the paper
    needs automata machinery): a predicate in a cycle that happens to
    be semantically bounded is reported unbounded, never vice versa.
    """
    deps = _idb_dependencies(program)
    components = strongly_connected_components(
        sorted(deps), lambda p: sorted(deps[p])
    )
    depth: dict[str, int] = {}
    unbounded: set[str] = set()
    # reverse topological order: every dependency is classified before
    # its dependents, so one sweep suffices
    for component in components:
        cyclic = len(component) > 1 or (
            component[0] in deps[component[0]]
        )
        if cyclic or any(d in unbounded for p in component for d in deps[p]):
            unbounded.update(component)
            continue
        p = component[0]
        depth[p] = 1 + max((depth[d] for d in deps[p]), default=0)
    return depth


@dataclass(frozen=True)
class UnfoldReport:
    """What :func:`eliminate_recursion` did to one program."""

    #: every detected bounded predicate with its depth bound
    bounded: tuple[tuple[str, int], ...]
    #: the subset actually unfolded away (single positive-only rule,
    #: distinct-variable head, not protected by ``keep``)
    inlined: tuple[str, ...]
    rules_before: int
    rules_after: int


def eliminate_recursion(
    program: Program, keep: frozenset[str] | set[str] = frozenset()
) -> tuple[Program, UnfoldReport]:
    """Unfold bounded predicates out of ``program``.

    A predicate qualifies when it is bounded (:func:`bounded_predicates`),
    not in ``keep`` (the externally visible answers -- the compiler
    protects :data:`~repro.core.mso_to_datalog.ANSWER_PREDICATE`),
    never occurs negated, and is defined by exactly one rule whose head
    arguments are distinct variables.  Each body occurrence is replaced
    by that rule's body with head variables bound to the occurrence's
    arguments and all other rule variables freshly renamed (so nested
    and repeated occurrences cannot capture each other); the defining
    rule is then dropped.  Unfolding shallowest-first means deeper
    bounded predicates inline the already-unfolded bodies of their
    dependencies, so the result is recursion-free in every predicate
    that was unfolded.

    The least model restricted to the surviving predicates is unchanged
    -- standard positive unfold/fold equivalence; the conformance suite
    pins it against the original program on random structures.
    """
    rules = list(program.rules)
    bounded = bounded_predicates(program)
    negated = {
        literal.atom.predicate
        for rule in rules
        for literal in rule.body
        if not literal.positive
    }
    rules_of: dict[str, list[int]] = {}
    for i, rule in enumerate(rules):
        rules_of.setdefault(rule.head.predicate, []).append(i)

    def unfoldable(name: str) -> bool:
        if name in keep or name in negated:
            return False
        indices = rules_of.get(name, ())
        if len(indices) != 1:
            return False
        head = rules[indices[0]].head
        seen: set[Variable] = set()
        for arg in head.args:
            if not isinstance(arg, Variable) or arg in seen:
                return False
            seen.add(arg)
        return True

    targets = [
        name
        for name, _depth in sorted(bounded.items(), key=lambda kv: kv[1])
        if unfoldable(name)
    ]
    fresh_counter = 0

    def instantiate(definition: Rule, call: Atom) -> tuple[Literal, ...]:
        """The defining body with head vars bound to the call's args
        and every other variable freshly renamed."""
        nonlocal fresh_counter
        mapping: dict[Variable, object] = dict(
            zip(definition.head.args, call.args)
        )
        for v in definition.variables():
            if v not in mapping:
                mapping[v] = Variable(f"_u{fresh_counter}_{v.name}")
        fresh_counter += 1
        return tuple(
            Literal(literal.atom.substitute(mapping), literal.positive)
            for literal in definition.body
        )

    inlined = []
    for name in targets:
        definition = rules[rules_of[name][0]]
        if not any(
            rule is not definition
            and any(
                literal.positive and literal.atom.predicate == name
                for literal in rule.body
            )
            for rule in rules
        ):
            # no consumers: nothing to unfold, and dropping the
            # defining rule would silently delete the relation
            continue
        replaced = []
        for rule in rules:
            if rule is definition:
                continue
            if not any(
                literal.positive and literal.atom.predicate == name
                for literal in rule.body
            ):
                replaced.append(rule)
                continue
            body: list[Literal] = []
            for literal in rule.body:
                if literal.positive and literal.atom.predicate == name:
                    body.extend(instantiate(definition, literal.atom))
                else:
                    body.append(literal)
            replaced.append(Rule(rule.head, tuple(body)))
        rules = replaced
        rules_of = {}
        for i, rule in enumerate(rules):
            rules_of.setdefault(rule.head.predicate, []).append(i)
        inlined.append(name)

    report = UnfoldReport(
        bounded=tuple(sorted(bounded.items())),
        inlined=tuple(inlined),
        rules_before=len(program.rules),
        rules_after=len(rules),
    )
    if not inlined:
        return program, report
    return Program(rules, program.builtin_names), report
