"""Built-in predicates with binding-pattern-aware evaluation.

Section 1 lists "the possibility to define new built-in predicates if
they admit an efficient implementation by the interpreter" among
datalog's advantages, and Section 5 leans on it: the programs of
Figures 5 and 6 manipulate fixed-size sets with ``⊎``, ``∪``, ``∩``,
``⊆``, ``∈`` and ordered sets.  Those operators are implemented here.

A built-in receives a tuple of argument *slots*; bound slots carry the
concrete value, unbound slots carry :data:`UNBOUND`.  It yields one
tuple of concrete values per solution.  ``can_evaluate`` advertises the
binding patterns a built-in supports, which the rule planner uses to
order body literals.

Set-valued constants are frozensets; ordered sets (``Co`` in Figure 6)
are tuples.  All of these are "fixed-size" in the paper's sense -- their
cardinality is bounded by the bag size ``w + 1`` -- which is what makes
the succinct programs equivalent to monadic ones (Theorem 5.1/5.3).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator

from .._util import interleavings, powerset


class _Unbound:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNBOUND"


UNBOUND = _Unbound()

Slots = tuple  # values or UNBOUND


def _mask(slots: Slots) -> tuple[bool, ...]:
    return tuple(s is not UNBOUND for s in slots)


class Builtin:
    """Base class: subclasses implement ``solutions`` for the patterns
    they declare in ``patterns`` (a set of bound-masks, or ``None`` for
    "all arguments must be bound")."""

    name: str
    arity: int
    #: supported binding masks; True = bound.  ``None`` means fully bound only.
    patterns: frozenset[tuple[bool, ...]] | None = None

    def can_evaluate(self, mask: tuple[bool, ...]) -> bool:
        if all(mask):
            return True
        if self.patterns is None:
            return False
        # a pattern with fewer bound slots than we have is still fine
        return any(
            all(b or not need for b, need in zip(mask, pattern))
            for pattern in self.patterns
        )

    def solutions(self, slots: Slots) -> Iterator[tuple]:
        raise NotImplementedError

    def evaluate(self, slots: Slots) -> Iterator[tuple]:
        if len(slots) != self.arity:
            raise ValueError(
                f"{self.name}/{self.arity} called with {len(slots)} slots"
            )
        if not self.can_evaluate(_mask(slots)):
            raise ValueError(
                f"built-in {self.name} cannot run with binding {_mask(slots)}"
            )
        for solution in self.solutions(slots):
            if all(
                s is UNBOUND or s == v for s, v in zip(slots, solution)
            ):
                yield solution


class _CheckBuiltin(Builtin):
    """A fully-bound test: ``predicate(args)`` holds or not."""

    def __init__(self, name: str, arity: int, test: Callable[..., bool]):
        self.name = name
        self.arity = arity
        self._test = test

    def solutions(self, slots: Slots) -> Iterator[tuple]:
        if self._test(*slots):
            yield tuple(slots)


class _FunctionBuiltin(Builtin):
    """Last argument computed from the others; also usable as a check."""

    def __init__(self, name: str, arity: int, fn: Callable[..., Hashable]):
        self.name = name
        self.arity = arity
        self._fn = fn
        self.patterns = frozenset(
            {tuple([True] * (arity - 1) + [False])}
        )

    def solutions(self, slots: Slots) -> Iterator[tuple]:
        inputs = slots[:-1]
        if any(s is UNBOUND for s in inputs):
            raise ValueError(f"{self.name}: inputs must be bound")
        yield tuple(inputs) + (self._fn(*inputs),)


class AddElement(Builtin):
    """``add(S, V, T)``: ``T = S ⊎ {V}`` (V not already in S).

    Patterns: (S, V bound -> T), (T bound -> enumerate S, V),
    (T, V bound -> S), (T, S bound -> V).
    """

    name = "add"
    arity = 3
    patterns = frozenset(
        {
            (True, True, False),
            (False, False, True),
        }
    )

    def solutions(self, slots: Slots) -> Iterator[tuple]:
        s, v, t = slots
        if s is not UNBOUND and v is not UNBOUND:
            if v in s:
                return
            yield (s, v, frozenset(s) | {v})
            return
        if t is UNBOUND:
            raise ValueError("add/3 needs either (S,V) or T bound")
        for v_out in sorted(t, key=repr):
            yield (frozenset(t) - {v_out}, v_out, frozenset(t))


class Subset(Builtin):
    """``subset(S, T)``: S ⊆ T.  With S unbound, enumerates subsets of T."""

    name = "subset"
    arity = 2
    patterns = frozenset({(False, True)})

    def solutions(self, slots: Slots) -> Iterator[tuple]:
        s, t = slots
        if s is not UNBOUND:
            if frozenset(s) <= frozenset(t):
                yield (s, t)
            return
        for sub in powerset(sorted(t, key=repr)):
            yield (frozenset(sub), t)


class PartitionTwo(Builtin):
    """``partition2(X, Y, Z)``: Y ⊎ Z = X (Y ∩ Z = ∅; Y ∪ Z = X).

    With only X bound, enumerates all 2-partitions.
    """

    name = "partition2"
    arity = 3
    patterns = frozenset(
        {(True, False, False), (True, True, False), (True, False, True)}
    )

    def solutions(self, slots: Slots) -> Iterator[tuple]:
        x, y, z = slots
        x = frozenset(x)
        if y is not UNBOUND:
            y = frozenset(y)
            if y <= x:
                yield (x, y, x - y)
            return
        if z is not UNBOUND:
            z = frozenset(z)
            if z <= x:
                yield (x, x - z, z)
            return
        for sub in powerset(sorted(x, key=repr)):
            y_out = frozenset(sub)
            yield (x, y_out, x - y_out)


class PartitionThree(Builtin):
    """``partition3(X, R, G, B)``: R, G, B partition X.

    The ``partition`` helper of the 3-Colorability program (Figure 5).
    """

    name = "partition3"
    arity = 4
    patterns = frozenset({(True, False, False, False)})

    def solutions(self, slots: Slots) -> Iterator[tuple]:
        x = frozenset(slots[0])
        items = sorted(x, key=repr)
        def assignments(i: int, parts: tuple[frozenset, frozenset, frozenset]):
            if i == len(items):
                yield parts
                return
            for j in range(3):
                updated = tuple(
                    p | {items[i]} if k == j else p for k, p in enumerate(parts)
                )
                yield from assignments(i + 1, updated)

        empty = (frozenset(), frozenset(), frozenset())
        for r, g, b in assignments(0, empty):
            yield (x, r, g, b)


class OrderedInsert(Builtin):
    """``oinsert(C, V, C2)``: ordered set C2 arises by inserting V into C.

    Figure 6 writes ``Co ⊎ {b}`` for ordered sets: "b is arbitrarily
    inserted into Co, leaving the order of the remaining elements
    unchanged".  With (C, V) bound this *enumerates* the insertion
    positions; with C2 bound it recovers (C, V) by deleting each element.
    """

    name = "oinsert"
    arity = 3
    patterns = frozenset({(True, True, False), (False, False, True)})

    def solutions(self, slots: Slots) -> Iterator[tuple]:
        c, v, c2 = slots
        if c is not UNBOUND and v is not UNBOUND:
            if v in c:
                return
            for inserted in interleavings(c, v):
                yield (c, v, inserted)
            return
        if c2 is UNBOUND:
            raise ValueError("oinsert/3 needs (C,V) or C2 bound")
        for i, v_out in enumerate(c2):
            yield (c2[:i] + c2[i + 1 :], v_out, c2)


class OrderedSubsets(Builtin):
    """``osubsets(X, C)``: C is an ordered arrangement of a subset of X.

    Enumerates every (subset, order) pair -- the leaf-rule "guess" of the
    ordered set Co in Figure 6.
    """

    name = "osubsets"
    arity = 2
    patterns = frozenset({(True, False)})

    def solutions(self, slots: Slots) -> Iterator[tuple]:
        from itertools import permutations

        x, c = slots
        if c is not UNBOUND:
            if len(set(c)) == len(c) and set(c) <= set(x):
                yield (x, c)
            return
        for sub in powerset(sorted(frozenset(x), key=repr)):
            for arrangement in permutations(sub):
                yield (x, arrangement)


def make_check(name: str, arity: int, test: Callable[..., bool]) -> Builtin:
    """A fully-bound boolean test built-in."""
    return _CheckBuiltin(name, arity, test)


def make_function(name: str, arity: int, fn: Callable[..., Hashable]) -> Builtin:
    """A built-in computing its last argument from the others."""
    return _FunctionBuiltin(name, arity, fn)


class BuiltinRegistry:
    """Name -> Builtin lookup handed to the evaluator."""

    def __init__(self, builtins: Iterable[Builtin] = ()):
        self._by_name: dict[str, Builtin] = {}
        for builtin in builtins:
            self.register(builtin)

    def register(self, builtin: Builtin) -> None:
        if builtin.name in self._by_name:
            raise ValueError(f"built-in {builtin.name} already registered")
        self._by_name[builtin.name] = builtin

    def get(self, name: str) -> Builtin:
        return self._by_name[name]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def names(self) -> frozenset[str]:
        return frozenset(self._by_name)


def standard_registry() -> BuiltinRegistry:
    """The stock of built-ins shared by the Section 5 programs."""
    registry = BuiltinRegistry(
        [
            AddElement(),
            Subset(),
            PartitionTwo(),
            PartitionThree(),
            OrderedInsert(),
            OrderedSubsets(),
            make_check("eq", 2, lambda a, b: a == b),
            make_check("neq", 2, lambda a, b: a != b),
            make_check("lt", 2, lambda a, b: a < b),
            make_check("le", 2, lambda a, b: a <= b),
            make_check("member", 2, lambda v, s: v in s),
            make_check("not_member", 2, lambda v, s: v not in s),
            make_check("subseteq", 2, lambda s, t: frozenset(s) <= frozenset(t)),
            make_check("disjoint", 2, lambda s, t: not (frozenset(s) & frozenset(t))),
            make_check("empty", 1, lambda s: not s),
            make_function("union", 3, lambda a, b: frozenset(a) | frozenset(b)),
            make_function("intersection", 3, lambda a, b: frozenset(a) & frozenset(b)),
            make_function("setminus", 3, lambda a, b: frozenset(a) - frozenset(b)),
            make_function("oset_to_set", 2, lambda c: frozenset(c)),
        ]
    )
    return registry
