"""The quasi-guarded fragment (Definition 4.3).

A variable ``y`` is *functionally dependent* on an atom ``B`` in a rule
``r`` if in every ground instantiation of ``r`` the value of ``y`` is
uniquely determined by the value of ``B``.  A program is *quasi-guarded*
if every rule has an extensional atom ``B`` such that every variable of
the rule occurs in ``B`` or is functionally dependent on it.

The functional dependence we can witness statically comes from declared
key constraints on the extensional predicates of ``A_td``:

* ``bag(v, x0, ..., xw)`` -- the bag is a function of the node:
  position 0 determines all others;
* ``child1(v1, v)`` / ``child2(v2, v)`` -- a node has at most one first
  and one second child, and at most one parent, so each argument
  determines the other.

Those are exactly the dependencies the proof of Theorem 4.5 appeals to
("the remaining variables v1 and v2 in this rule are functionally
dependent on v via the atoms child1(v1, v) and child2(v2, v)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from .ast import Atom, Constant, Literal, Program, Rule, Variable


@dataclass(frozen=True)
class KeyDependency:
    """Positions ``determinants`` functionally determine ``dependents``
    within a single atom of ``predicate``."""

    predicate: str
    determinants: tuple[int, ...]
    dependents: tuple[int, ...]


def td_key_dependencies(bag_arity: int) -> tuple[KeyDependency, ...]:
    """The key constraints of the tau_td encoding (either bag form)."""
    return (
        KeyDependency("bag", (0,), tuple(range(1, bag_arity))),
        KeyDependency("child1", (0,), (1,)),
        KeyDependency("child1", (1,), (0,)),
        KeyDependency("child2", (0,), (1,)),
        KeyDependency("child2", (1,), (0,)),
    )


def _dependency_closure(
    start: set[Variable],
    rule: Rule,
    dependencies: Mapping[str, list[KeyDependency]],
) -> set[Variable]:
    known = set(start)
    changed = True
    while changed:
        changed = False
        for literal in rule.body:
            if not literal.positive:
                continue
            atom = literal.atom
            for dep in dependencies.get(atom.predicate, ()):
                if max(dep.determinants + dep.dependents, default=-1) >= atom.arity:
                    continue
                det_terms = [atom.args[i] for i in dep.determinants]
                if all(
                    isinstance(t, Constant) or t in known for t in det_terms
                ):
                    for i in dep.dependents:
                        term = atom.args[i]
                        if isinstance(term, Variable) and term not in known:
                            known.add(term)
                            changed = True
    return known


def find_quasi_guard(
    rule: Rule,
    extensional: frozenset[str],
    dependencies: Iterable[KeyDependency] = (),
) -> Atom | None:
    """An extensional body atom covering all rule variables, or None."""
    by_predicate: dict[str, list[KeyDependency]] = {}
    for dep in dependencies:
        by_predicate.setdefault(dep.predicate, []).append(dep)
    all_vars = rule.variables()
    for literal in rule.body:
        if not literal.positive:
            continue
        atom = literal.atom
        if atom.predicate not in extensional:
            continue
        reachable = _dependency_closure(
            set(atom.variables()), rule, by_predicate
        )
        if all_vars <= reachable:
            return atom
    return None


def is_quasi_guarded(
    program: Program, dependencies: Iterable[KeyDependency] = ()
) -> bool:
    """Does every rule have a quasi-guard (Definition 4.3)?

    Rules without variables (ground rules) are trivially quasi-guarded.
    """
    extensional = program.extensional_predicates()
    deps = tuple(dependencies)
    for rule in program.rules:
        if not rule.variables():
            continue
        if find_quasi_guard(rule, extensional, deps) is None:
            return False
    return True


def quasi_guard_report(
    program: Program, dependencies: Iterable[KeyDependency] = ()
) -> dict[str, list[Rule]]:
    """Rules partitioned into guarded / unguarded, for diagnostics."""
    extensional = program.extensional_predicates()
    deps = tuple(dependencies)
    report: dict[str, list[Rule]] = {"guarded": [], "unguarded": []}
    for rule in program.rules:
        if not rule.variables() or find_quasi_guard(rule, extensional, deps):
            report["guarded"].append(rule)
        else:
            report["unguarded"].append(rule)
    return report
