"""Bottom-up datalog evaluation (the naive and semi-naive backends).

The least fixpoint of ``P ∪ A`` (Section 2.4) is computed bottom-up.
This module is the substrate for the three pluggable evaluation
backends registered in :mod:`repro.datalog.backends`:

* ``naive`` -- :func:`naive_least_fixpoint`, Jacobi-style re-derivation
  each round; the ablation baseline for the engine benchmark;
* ``semi-naive`` -- :class:`SemiNaiveEvaluator`, stratified delta-driven
  evaluation with on-demand hash indexes and built-in predicates; the
  "interpreter" of Section 6, whose lazy behaviour is the paper's
  optimization (2): "generating only those ground instances of rules
  which actually produce new facts";
* ``magic`` -- the demand transformation of :mod:`repro.datalog.magic`,
  which rewrites the program relative to a query atom and then runs the
  semi-naive evaluator on the rewritten program, deriving only facts
  relevant to the query.

Stratification and per-rule join plans are computed once per program by
:func:`prepare_program` and reused across structures (and cached across
solver instances by :class:`repro.datalog.backends.ProgramCache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..structures.structure import Fact, Structure
from .ast import Atom, Constant, Literal, Program, Rule, Variable
from .builtins import UNBOUND, BuiltinRegistry, standard_registry
from .passes import strongly_connected_components
from .profile import CostModel, IndexSelection, min_index_selection


class UnsafeRuleError(ValueError):
    """A rule whose body cannot bind all its variables."""


class NotStratifiableError(ValueError):
    """Negation through recursion."""


# ----------------------------------------------------------------------
# Fact storage
# ----------------------------------------------------------------------


class Database:
    """Facts per predicate with lazily-built hash indexes.

    Indexes are registered *per predicate*: inserting a fact touches
    only the indexes of that fact's predicate, not every index in the
    database (insertion cost is proportional to how indexed the one
    predicate is, which keeps bulk loads linear).
    """

    __slots__ = ("_facts", "_indexes")

    def __init__(self) -> None:
        self._facts: dict[str, set[tuple]] = {}
        #: predicate -> {positions -> {key -> rows}}
        self._indexes: dict[
            str, dict[tuple[int, ...], dict[tuple, list[tuple]]]
        ] = {}

    @classmethod
    def from_facts(cls, facts: Iterable[Fact]) -> "Database":
        db = cls()
        for fact in facts:
            db.add(fact.predicate, fact.args)
        return db

    @classmethod
    def from_structure(cls, structure: Structure) -> "Database":
        db = cls()
        for name in structure.signature:
            for tup in structure.relation(name):
                db.add(name, tup)
        return db

    @classmethod
    def from_relations(
        cls, relations: Mapping[str, set[tuple]]
    ) -> "Database":
        """Wrap already-built relations, taking ownership of the sets
        (no defensive copy -- the caller hands them over).  This is the
        bulk-decode path of the set-at-a-time engine."""
        db = cls()
        db._facts = dict(relations)
        return db

    def add(self, predicate: str, args: tuple) -> bool:
        """Insert; returns True iff the fact is new."""
        rel = self._facts.setdefault(predicate, set())
        if args in rel:
            return False
        rel.add(args)
        indexes = self._indexes.get(predicate)
        if indexes:
            for positions, index in indexes.items():
                key = tuple(args[i] for i in positions)
                index.setdefault(key, []).append(args)
        return True

    def contains(self, predicate: str, args: tuple) -> bool:
        return args in self._facts.get(predicate, ())

    def relation(self, predicate: str) -> set[tuple]:
        return self._facts.get(predicate, set())

    def predicates(self) -> Iterator[str]:
        return iter(self._facts)

    def fact_count(self) -> int:
        return sum(len(rel) for rel in self._facts.values())

    def facts(self) -> Iterator[Fact]:
        for predicate in sorted(self._facts):
            for args in sorted(self._facts[predicate], key=repr):
                yield Fact(predicate, args)

    def match(self, predicate: str, pattern: Sequence) -> Iterator[tuple]:
        """All facts of ``predicate`` matching the pattern.

        ``pattern`` entries are concrete values or :data:`UNBOUND`.
        """
        if not self._facts.get(predicate):
            return iter(())
        positions = tuple(
            i for i, p in enumerate(pattern) if p is not UNBOUND
        )
        if not positions:
            return iter(self._facts[predicate])
        index = self.lookup(predicate, positions)
        key = tuple(pattern[i] for i in positions)
        return iter(index.get(key, ()))

    def lookup(
        self, predicate: str, positions: tuple[int, ...]
    ) -> dict[tuple, list[tuple]]:
        """The hash index of ``predicate`` on ``positions`` (built
        lazily, then maintained incrementally by :meth:`add`).

        Exposed so relation-level joins (the set-at-a-time engine, the
        batch grounder) can probe one index per join step instead of
        re-resolving it per binding.
        """
        per_pred = self._indexes.setdefault(predicate, {})
        index = per_pred.get(positions)
        if index is None:
            index = {}
            for args in self._facts.get(predicate, ()):
                key = tuple(args[i] for i in positions)
                index.setdefault(key, []).append(args)
            per_pred[positions] = index
        return index

    def copy(self) -> "Database":
        clone = Database()
        clone._facts = {p: set(rel) for p, rel in self._facts.items()}
        return clone


# ----------------------------------------------------------------------
# Stratification
# ----------------------------------------------------------------------


def stratify(program: Program) -> list[frozenset[str]]:
    """Partition the IDB predicates into strata.

    Raises :class:`NotStratifiableError` if some negation occurs inside
    a recursive cycle.  Extensional and built-in predicates do not
    participate.
    """
    idb = program.intensional_predicates()
    pos_edges: dict[str, set[str]] = {p: set() for p in idb}
    neg_edges: dict[str, set[str]] = {p: set() for p in idb}
    for r in program.rules:
        head = r.head.predicate
        for literal in r.body:
            p = literal.atom.predicate
            if p in idb:
                (pos_edges if literal.positive else neg_edges)[p].add(head)

    # iterate stratum numbers to a fixpoint (programs are small)
    stratum = {p: 0 for p in idb}
    changed = True
    rounds = 0
    while changed:
        changed = False
        rounds += 1
        if rounds > len(idb) + 1:
            raise NotStratifiableError("negation through recursion")
        for src in idb:
            for dst in pos_edges[src]:
                if stratum[dst] < stratum[src]:
                    stratum[dst] = stratum[src]
                    changed = True
            for dst in neg_edges[src]:
                if stratum[dst] < stratum[src] + 1:
                    stratum[dst] = stratum[src] + 1
                    changed = True
    if not idb:
        return []
    levels = max(stratum.values()) + 1
    return [
        frozenset(p for p in idb if stratum[p] == level)
        for level in range(levels)
    ]


def refine_strata(
    program: Program, strata: Sequence[frozenset[str]]
) -> tuple[frozenset[str], ...]:
    """Split each negation stratum into its positive-dependency SCCs.

    :func:`stratify` partitions by negation level only, so a level's
    predicates all share one fixpoint loop even when most of them never
    feed back into each other -- the compiled Theorem 4.5 programs land
    *everything*, including the nonrecursive ``phi`` selection rules,
    in a single stratum, and every delta round re-fires them all.
    Condensing each level by its positive intra-level edges and
    ordering the components topologically (dependencies first) is
    semantics-preserving -- every intra-level edge is positive, so the
    refined order is still a valid stratification and
    ``_check_negation_stratified`` keeps holding -- and it isolates
    the genuinely recursive cores: a singleton component without a
    self-loop has no recursive positions at all and takes the
    fire-once fast path of the evaluators.
    """
    idb = program.intensional_predicates()
    pos_deps: dict[str, set[str]] = {p: set() for p in idb}
    for rule in program.rules:
        head = pos_deps[rule.head.predicate]
        for literal in rule.body:
            name = literal.atom.predicate
            if literal.positive and name in idb:
                head.add(name)
    refined: list[frozenset[str]] = []
    for level in strata:
        members = sorted(level)
        # Tarjan emits components in reverse topological order of the
        # condensation -- dependencies first, which is evaluation order
        for component in strongly_connected_components(
            members, lambda p: sorted(pos_deps[p] & level)
        ):
            refined.append(frozenset(component))
    return tuple(refined)


# ----------------------------------------------------------------------
# Rule planning
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PlanStep:
    literal: Literal
    body_index: int
    kind: str  # "relation" | "builtin" | "negation"


def plan_rule(
    rule: Rule,
    idb: frozenset[str],
    registry: BuiltinRegistry,
    *,
    initial_bound: Iterable[Variable] = (),
    cost: CostModel | None = None,
    delta_predicates: frozenset[str] = frozenset(),
) -> tuple[PlanStep, ...]:
    """Order the body so every step can run with earlier bindings.

    Greedy: prefer positive relation atoms (most bound slots first),
    then built-ins whose binding pattern is satisfied, then fully-bound
    negations.  Raises :class:`UnsafeRuleError` when stuck, which also
    catches the classic safety violations.

    ``initial_bound`` lists variables already bound before the body
    runs; the magic-set rewriting uses it as the sideways-information-
    passing order with the head's bound arguments pre-bound.

    Atoms with equal bound-slot scores tie-break on the ``cost``
    model's estimated output cardinality (feedback from a profiled
    run), so a tiny guard relation is joined before a huge one instead
    of whichever came first in the rule text; atoms the model knows
    nothing about, and all atoms when ``cost`` is None, keep body
    textual order.  ``delta_predicates`` names the predicates that are
    delta-restricted in the semi-naive rounds of this rule's stratum --
    their scan estimate is scaled down to a per-round delta so
    cardinality feedback never demotes a recursive atom behind a full
    extensional scan it would beat on every delta round.
    """
    remaining: list[tuple[int, Literal]] = list(enumerate(rule.body))
    bound: set[Variable] = set(initial_bound)
    plan: list[PlanStep] = []

    def atom_mask(a: Atom) -> tuple[bool, ...]:
        return tuple(
            isinstance(arg, Constant) or arg in bound for arg in a.args
        )

    while remaining:
        chosen: tuple[int, Literal, str] | None = None
        best_key: tuple | None = None
        for index, literal in remaining:
            a = literal.atom
            is_builtin = a.predicate in registry and a.predicate not in idb
            mask = atom_mask(a)
            if literal.positive and not is_builtin:
                score = sum(mask)
                est = float("inf")
                if cost is not None:
                    got = cost.estimate(
                        a.predicate,
                        len(a.args),
                        tuple(i for i, b in enumerate(mask) if b),
                        delta=a.predicate in delta_predicates,
                    )
                    if got is not None:
                        est = got
                key = (-score, est, index)
                if best_key is None or key < best_key:
                    best_key = key
                    chosen = (index, literal, "relation")
        if chosen is None:
            for index, literal in remaining:
                a = literal.atom
                is_builtin = a.predicate in registry and a.predicate not in idb
                mask = atom_mask(a)
                if literal.positive and is_builtin and registry.get(
                    a.predicate
                ).can_evaluate(mask):
                    chosen = (index, literal, "builtin")
                    break
        if chosen is None:
            for index, literal in remaining:
                if not literal.positive and all(atom_mask(literal.atom)):
                    chosen = (index, literal, "negation")
                    break
        if chosen is None:
            raise UnsafeRuleError(
                f"cannot order body of rule: {rule} (bound so far: "
                f"{sorted(v.name for v in bound)})"
            )
        index, literal, kind = chosen
        remaining.remove((index, literal))
        bound.update(literal.atom.variables())
        plan.append(PlanStep(literal, index, kind))

    unbound_head = set(rule.head.variables()) - bound
    if unbound_head:
        raise UnsafeRuleError(
            f"head variables {sorted(v.name for v in unbound_head)} "
            f"never bound in rule: {rule}"
        )
    return tuple(plan)


# ----------------------------------------------------------------------
# Join execution
# ----------------------------------------------------------------------

Binding = dict[Variable, object]


def _extend_with_fact(
    binding: Binding, atom: Atom, fact_args: tuple
) -> Binding | None:
    extended = binding
    copied = False
    for term, value in zip(atom.args, fact_args):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            known = extended.get(term, UNBOUND)
            if known is UNBOUND:
                if not copied:
                    extended = dict(extended)
                    copied = True
                extended[term] = value
            elif known != value:
                return None
    return extended


def _slots(atom: Atom, binding: Binding) -> tuple:
    return tuple(
        term.value
        if isinstance(term, Constant)
        else binding.get(term, UNBOUND)
        for term in atom.args
    )


@dataclass
class EvaluationStats:
    """Counters reported by the benchmark harness."""

    rule_firings: int = 0
    facts_derived: int = 0
    iterations: int = 0
    #: total bindings produced across all join-plan steps -- the
    #: planner-quality signal (a bad join order explodes this long
    #: before wall-clock makes the damage obvious)
    bindings_explored: int = 0


@dataclass(frozen=True)
class StratumPlan:
    """The rules of one stratum, pre-resolved for the fixpoint loop."""

    rule_indices: tuple[int, ...]
    #: per rule (parallel to ``rule_indices``): body positions holding a
    #: positive atom of this stratum -- the delta-restriction targets.
    recursive_positions: tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class PreparedProgram:
    """A program with stratification and join plans computed once.

    Building one of these is the per-program cost of evaluation (plan
    ordering, stratification, the safety checks); evaluating a prepared
    program over a structure is the per-structure cost.  Prepared
    programs are immutable and shared freely across evaluator instances
    -- :class:`repro.datalog.backends.ProgramCache` keeps them keyed by
    program fingerprint so repeated solves skip this work entirely.
    """

    program: Program
    registry: BuiltinRegistry
    idb: frozenset[str]
    strata: tuple[frozenset[str], ...]
    plans: tuple[tuple[PlanStep, ...], ...]  # parallel to program.rules
    stratum_plans: tuple[StratumPlan, ...]  # parallel to strata
    #: MinIndexSelection over the plans' extensional search signatures;
    #: installed on the SetDatabase by the set-at-a-time evaluator so
    #: nested access patterns share one lexicographic index
    index_selection: IndexSelection | None = None


def _search_signatures(
    program: Program,
    plans: Sequence[tuple[PlanStep, ...]],
    idb: frozenset[str],
) -> dict[str, set[tuple[int, ...]]]:
    """The extensional search signatures of the planned probe steps:
    predicate -> set of sorted bound-position tuples.  Mirrors the
    classification of ``setengine._compile_steps`` (constants plus
    already-bound variables form the probe key; a step with no free
    positions is a semi-join, not an index probe).  Intensional
    predicates are excluded -- they mutate every delta round, and the
    shared lexicographic indexes are rebuilt, not maintained."""
    signatures: dict[str, set[tuple[int, ...]]] = {}
    for rule, plan in zip(program.rules, plans):
        bound: set[Variable] = set()
        for step in plan:
            atom = step.literal.atom
            if step.kind == "relation" and atom.predicate not in idb:
                key: list[int] = []
                free = 0
                seen: set[Variable] = set()
                for pos, arg in enumerate(atom.args):
                    if isinstance(arg, Constant) or arg in bound:
                        key.append(pos)
                    elif arg not in seen:
                        seen.add(arg)
                        free += 1
                if key and free:
                    signatures.setdefault(atom.predicate, set()).add(
                        tuple(key)
                    )
            bound.update(step.literal.atom.variables())
    return signatures


def prepare_program(
    program: Program,
    registry: BuiltinRegistry | None = None,
    cost: CostModel | None = None,
) -> PreparedProgram:
    """Stratify, safety-check, and plan every rule of ``program``.

    ``cost`` replans with cardinality feedback: plan_rule tie-breaks on
    the model's estimates instead of body textual order, producing the
    "replanned" prepared program of the profile -> replan loop."""
    registry = registry if registry is not None else standard_registry()
    idb = program.intensional_predicates()
    overlap = idb & registry.names()
    if overlap:
        raise ValueError(
            f"predicates defined both by rules and built-ins: {sorted(overlap)}"
        )
    strata = refine_strata(program, stratify(program))
    _check_negation_stratified(program, idb, strata)
    stratum_of: dict[str, frozenset[str]] = {}
    for stratum in strata:
        for predicate in stratum:
            stratum_of[predicate] = stratum
    plans = tuple(
        plan_rule(
            rule,
            idb,
            registry,
            cost=cost,
            delta_predicates=stratum_of.get(
                rule.head.predicate, frozenset()
            ),
        )
        for rule in program.rules
    )
    stratum_plans = []
    for stratum in strata:
        indices = tuple(
            i
            for i, rule in enumerate(program.rules)
            if rule.head.predicate in stratum
        )
        recursive = tuple(
            tuple(
                pos
                for pos, literal in enumerate(program.rules[i].body)
                if literal.positive and literal.atom.predicate in stratum
            )
            for i in indices
        )
        stratum_plans.append(StratumPlan(indices, recursive))
    return PreparedProgram(
        program=program,
        registry=registry,
        idb=idb,
        strata=strata,
        plans=plans,
        stratum_plans=tuple(stratum_plans),
        index_selection=min_index_selection(
            _search_signatures(program, plans, idb)
        ),
    )


def _check_negation_stratified(
    program: Program,
    idb: frozenset[str],
    strata: Sequence[frozenset[str]],
) -> None:
    level = {}
    for i, stratum in enumerate(strata):
        for p in stratum:
            level[p] = i
    for rule in program.rules:
        head_level = level[rule.head.predicate]
        for literal in rule.body:
            p = literal.atom.predicate
            if p in idb and not literal.positive:
                if level[p] >= head_level:
                    raise NotStratifiableError(
                        f"negated IDB atom {literal} not on a lower stratum"
                    )


class SemiNaiveEvaluator:
    """Stratified semi-naive evaluation of a program over a database."""

    def __init__(
        self,
        program: Program,
        registry: BuiltinRegistry | None = None,
        prepared: PreparedProgram | None = None,
    ):
        if prepared is None:
            prepared = prepare_program(program, registry)
        self.prepared = prepared
        self.program = prepared.program
        self.registry = prepared.registry
        self.idb = prepared.idb
        self.strata = list(prepared.strata)
        self.stats = EvaluationStats()

    @classmethod
    def from_prepared(cls, prepared: PreparedProgram) -> "SemiNaiveEvaluator":
        """An evaluator that skips all per-program work (cache hits)."""
        return cls(prepared.program, prepared=prepared)

    # -- rule evaluation ------------------------------------------------

    def _solutions(
        self,
        plan: Sequence[PlanStep],
        db: Database,
        delta_index: int | None,
        delta: Database | None,
    ) -> Iterator[Binding]:
        bindings: list[Binding] = [{}]
        for step in plan:
            atom = step.literal.atom
            new_bindings: list[Binding] = []
            if step.kind == "relation":
                source = (
                    delta
                    if delta_index is not None and step.body_index == delta_index
                    else db
                )
                for binding in bindings:
                    pattern = _slots(atom, binding)
                    for fact_args in source.match(atom.predicate, pattern):
                        extended = _extend_with_fact(binding, atom, fact_args)
                        if extended is not None:
                            new_bindings.append(extended)
            elif step.kind == "builtin":
                builtin = self.registry.get(atom.predicate)
                for binding in bindings:
                    pattern = _slots(atom, binding)
                    for solution in builtin.evaluate(pattern):
                        extended = _extend_with_fact(binding, atom, solution)
                        if extended is not None:
                            new_bindings.append(extended)
            else:  # negation
                for binding in bindings:
                    pattern = _slots(atom, binding)
                    if any(p is UNBOUND for p in pattern):
                        raise UnsafeRuleError(
                            f"negated atom {atom} not fully bound"
                        )
                    if atom.predicate in self.registry and (
                        atom.predicate not in self.idb
                    ):
                        held = any(self.registry.get(atom.predicate).evaluate(pattern))
                    else:
                        held = db.contains(atom.predicate, tuple(pattern))
                    if not held:
                        new_bindings.append(binding)
            bindings = new_bindings
            self.stats.bindings_explored += len(bindings)
            if not bindings:
                return
        yield from bindings

    def _fire(
        self,
        rule_index: int,
        db: Database,
        out: list[Fact],
        delta_index: int | None = None,
        delta: Database | None = None,
    ) -> None:
        rule = self.program.rules[rule_index]
        plan = self.prepared.plans[rule_index]
        for binding in self._solutions(plan, db, delta_index, delta):
            self.stats.rule_firings += 1
            head = rule.head.substitute(
                {v: Constant(val) for v, val in binding.items()}
            )
            out.append(head.to_fact())

    # -- fixpoint -------------------------------------------------------

    def evaluate(self, edb: Database | Iterable[Fact] | Structure) -> Database:
        """Least fixpoint of ``P ∪ A``; the returned database contains
        both the extensional and the derived facts."""
        if isinstance(edb, Structure):
            db = Database.from_structure(edb)
        elif isinstance(edb, Database):
            db = edb.copy()
        else:
            db = Database.from_facts(edb)

        for stratum_plan in self.prepared.stratum_plans:
            if not any(stratum_plan.recursive_positions):
                # single-pass route: no rule of this stratum consumes
                # the stratum's own output (an SCC-refined nonrecursive
                # stratum), so one firing is the fixpoint -- skip the
                # delta bookkeeping entirely
                derived = []
                for rule_index in stratum_plan.rule_indices:
                    self._fire(rule_index, db, derived)
                for fact in derived:
                    if db.add(fact.predicate, fact.args):
                        self.stats.facts_derived += 1
                continue
            # round 0: every rule once against the current database
            delta = Database()
            derived = []
            for rule_index in stratum_plan.rule_indices:
                self._fire(rule_index, db, derived)
            for fact in derived:
                if db.add(fact.predicate, fact.args):
                    delta.add(fact.predicate, fact.args)
                    self.stats.facts_derived += 1

            # subsequent rounds: delta-restricted re-evaluation
            while delta.fact_count():
                self.stats.iterations += 1
                new_delta = Database()
                derived = []
                for rule_index, positions in zip(
                    stratum_plan.rule_indices, stratum_plan.recursive_positions
                ):
                    for body_index in positions:
                        self._fire(
                            rule_index,
                            db,
                            derived,
                            delta_index=body_index,
                            delta=delta,
                        )
                for fact in derived:
                    if db.add(fact.predicate, fact.args):
                        new_delta.add(fact.predicate, fact.args)
                        self.stats.facts_derived += 1
                delta = new_delta
        return db


def least_fixpoint(
    program: Program,
    edb: Database | Iterable[Fact] | Structure,
    registry: BuiltinRegistry | None = None,
) -> Database:
    """Convenience wrapper: semi-naive least fixpoint."""
    return SemiNaiveEvaluator(program, registry).evaluate(edb)


def naive_least_fixpoint(
    program: Program,
    edb: Database | Iterable[Fact] | Structure,
    registry: BuiltinRegistry | None = None,
    stats: EvaluationStats | None = None,
    prepared: PreparedProgram | None = None,
) -> Database:
    """Naive (Jacobi-style) fixpoint: re-fire every rule each round.

    Semantically identical to :func:`least_fixpoint`; exists as the
    baseline of the engine ablation benchmark.
    """
    evaluator = SemiNaiveEvaluator(program, registry, prepared=prepared)
    if stats is not None:
        evaluator.stats = stats
    if isinstance(edb, Structure):
        db = Database.from_structure(edb)
    elif isinstance(edb, Database):
        db = edb.copy()
    else:
        db = Database.from_facts(edb)
    for stratum_plan in evaluator.prepared.stratum_plans:
        changed = True
        while changed:
            changed = False
            evaluator.stats.iterations += 1
            derived: list[Fact] = []
            for rule_index in stratum_plan.rule_indices:
                evaluator._fire(rule_index, db, derived)
            for fact in derived:
                if db.add(fact.predicate, fact.args):
                    evaluator.stats.facts_derived += 1
                    changed = True
    return db
