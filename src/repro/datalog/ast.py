"""Datalog abstract syntax (Section 2.4).

A datalog program is a set of function-free Horn clauses.  We extend the
bare calculus with two features the paper itself uses:

* *stratified negation* on body literals -- the generic program of
  Theorem 4.5 contains negated extensional atoms
  (``{¬Ri(...) | R(...) not in E(A)}``);
* *built-in predicates* -- "the possibility to define new built-in
  predicates if they admit an efficient implementation by the
  interpreter" (Section 1); Figures 5 and 6 use set operators that are
  registered as built-ins in :mod:`repro.datalog.builtins`.

Constants carry arbitrary hashable Python values, which is what makes
the succinct set-valued programs of Section 5 expressible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from ..structures.structure import Fact


@dataclass(frozen=True, order=True)
class Variable:
    """A datalog variable (conventionally starts with an upper-case letter)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant term wrapping an arbitrary hashable value."""

    value: Hashable

    def __str__(self) -> str:
        value = self.value
        if isinstance(value, frozenset):
            inner = ",".join(sorted(map(str, value)))
            return "{" + inner + "}"
        if isinstance(value, tuple):
            return "<" + ",".join(map(str, value)) + ">"
        return str(value)


Term = Variable | Constant


@dataclass(frozen=True)
class Atom:
    """``predicate(t1, ..., tn)`` over variables and constants."""

    predicate: str
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        for arg in self.args:
            if not isinstance(arg, (Variable, Constant)):
                raise TypeError(f"argument {arg!r} is not a Term")

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> Iterator[Variable]:
        for arg in self.args:
            if isinstance(arg, Variable):
                yield arg

    def is_ground(self) -> bool:
        return all(isinstance(arg, Constant) for arg in self.args)

    def substitute(self, binding: Mapping[Variable, Constant]) -> "Atom":
        return Atom(
            self.predicate,
            tuple(
                binding.get(arg, arg) if isinstance(arg, Variable) else arg
                for arg in self.args
            ),
        )

    def to_fact(self) -> Fact:
        if not self.is_ground():
            raise ValueError(f"atom {self} is not ground")
        return Fact(self.predicate, tuple(arg.value for arg in self.args))

    @classmethod
    def from_fact(cls, fact: Fact) -> "Atom":
        return cls(fact.predicate, tuple(Constant(v) for v in fact.args))

    def __str__(self) -> str:
        inner = ", ".join(map(str, self.args))
        return f"{self.predicate}({inner})"


@dataclass(frozen=True)
class Literal:
    """A possibly negated atom in a rule body."""

    atom: Atom
    positive: bool = True

    def variables(self) -> Iterator[Variable]:
        return self.atom.variables()

    def negated(self) -> "Literal":
        return Literal(self.atom, not self.positive)

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"


@dataclass(frozen=True)
class Rule:
    """``head :- body.``  A fact is a rule with an empty body."""

    head: Atom
    body: tuple[Literal, ...] = ()

    def variables(self) -> set[Variable]:
        out = set(self.head.variables())
        for literal in self.body:
            out.update(literal.variables())
        return out

    def is_fact(self) -> bool:
        return not self.body and self.head.is_ground()

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        inner = ", ".join(map(str, self.body))
        return f"{self.head} :- {inner}."


class Program:
    """An ordered collection of rules with derived metadata.

    ``builtin_names`` lists predicates evaluated by the interpreter
    rather than looked up in the database; they are neither extensional
    nor intensional.
    """

    __slots__ = ("rules", "builtin_names")

    def __init__(self, rules: Iterable[Rule], builtin_names: Iterable[str] = ()):
        self.rules = tuple(rules)
        self.builtin_names = frozenset(builtin_names)
        clash = self.builtin_names & self.intensional_predicates()
        if clash:
            raise ValueError(f"built-ins also defined by rules: {sorted(clash)}")

    def intensional_predicates(self) -> frozenset[str]:
        """Predicates occurring in some rule head (Section 2.4)."""
        return frozenset(rule.head.predicate for rule in self.rules)

    def extensional_predicates(self) -> frozenset[str]:
        """Body-only, non-built-in predicates."""
        idb = self.intensional_predicates()
        out = set()
        for rule in self.rules:
            for literal in rule.body:
                name = literal.atom.predicate
                if name not in idb and name not in self.builtin_names:
                    out.add(name)
        return frozenset(out)

    def is_monadic(self) -> bool:
        """All intensional predicates unary (Definition 4.1)."""
        idb = self.intensional_predicates()
        for rule in self.rules:
            if rule.head.arity != 1:
                return False
            for literal in rule.body:
                if literal.atom.predicate in idb and literal.atom.arity != 1:
                    return False
        return True

    def size(self) -> int:
        """|P|: total number of literals, the program-size measure of
        Theorem 4.4."""
        return sum(1 + len(rule.body) for rule in self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)


# -- convenience constructors used throughout the problem modules --------


def var(name: str) -> Variable:
    return Variable(name)


def const(value: Hashable) -> Constant:
    return Constant(value)


def _term(value) -> Term:
    if isinstance(value, (Variable, Constant)):
        return value
    return Constant(value)


def atom(predicate: str, *args) -> Atom:
    """Build an atom, auto-wrapping non-Term arguments as constants."""
    return Atom(predicate, tuple(_term(a) for a in args))


def pos(predicate: str, *args) -> Literal:
    return Literal(atom(predicate, *args), True)


def neg(predicate: str, *args) -> Literal:
    return Literal(atom(predicate, *args), False)


def rule(head: Atom, *body: Literal) -> Rule:
    return Rule(head, tuple(body))
