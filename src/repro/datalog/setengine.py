"""Set-at-a-time semi-naive evaluation (the default engine).

The tuple-at-a-time evaluator in :mod:`repro.datalog.evaluate` walks a
rule's join plan one binding dict at a time: every extension copies a
``Binding`` dict, every head instantiation goes through
``Atom.substitute``.  Those per-tuple constant factors are exactly what
Section 6 of the paper warns decide the practical viability of the
monadic-datalog route, so this module re-executes the *same* join plans
(:func:`repro.datalog.evaluate.plan_rule` -- planning is shared, only
execution differs) relation-at-a-time:

* Constants are interned into dense integer ids
  (:class:`repro.datalog.interning.Interner`) when the extensional
  database is loaded, so facts are int tuples and unary relations are
  mirrored as big-int bitsets.
* Each plan step consumes and produces a *columnar batch* of bindings:
  a dict of variable -> column list (parallel lists, one entry per
  surviving binding), or -- while the batch tracks a single variable of
  a unary chain -- a plain bitset.  Monadic rule bodies such as
  ``q(X) :- p(X), r(X), not s(X)`` then run as word-parallel ``&`` /
  ``& ~`` on ints with no per-row Python at all.
* Relation steps are hash joins at the relation level: the bound
  positions are classified once per step (they are static given the
  plan), one incrementally-maintained index is fetched per step, and
  the batch probes it row by row.  The tuple engine's per-binding
  ``Database.match`` (pattern tuple + index resolution per tuple) is
  gone.

Semi-naive control flow (strata, round 0, delta-restricted rounds) is
byte-for-byte the same shape as :class:`SemiNaiveEvaluator`, so both
engines derive identical fact sets; the tuple path stays registered as
the ``semi-naive-tuple`` backend for the ablation benchmark.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from itertools import repeat
from typing import Iterable

from ..structures.structure import Fact, Structure
from .ast import Atom, Constant, Program, Rule, Variable
from .builtins import UNBOUND, BuiltinRegistry
from .evaluate import (
    Database,
    EvaluationStats,
    PlanStep,
    PreparedProgram,
    UnsafeRuleError,
    prepare_program,
)
from .interning import Interner, iter_bits
from .profile import IndexSelection, PlanProfile

__all__ = [
    "Batch",
    "BitBatch",
    "IndexStats",
    "SetDatabase",
    "SetSemiNaiveEvaluator",
    "set_least_fixpoint",
]

_EMPTY_SET: frozenset = frozenset()

#: upper sentinel for lexicographic prefix probes: compares greater
#: than every interned id (ids are ints)
_SUP = float("inf")


@dataclass
class IndexStats:
    """Index build accounting for one :class:`SetDatabase`.

    ``rebuilds`` counts builds of a ``(predicate, positions)`` pattern
    that had already been built on this database -- i.e. an index that
    was invalidated and paid for again.  A healthy fixpoint keeps this
    flat: `copy_relation` extends existing indexes incrementally
    instead of dropping them, so churny delta rounds never rebuild."""

    builds: int = 0
    rebuilds: int = 0
    lex_builds: int = 0
    lex_rebuilds: int = 0


class _LexIndex:
    """One shared lexicographic index: the relation's facts sorted by a
    column permutation.  Every search signature covered by the owning
    MinChainCover chain probes the same sorted array on a key *prefix*
    (two binary searches per probe), which is what lets one index
    replace a hash index per access pattern."""

    __slots__ = ("order", "keys", "rows")

    def __init__(
        self, order: tuple[int, ...], facts: Iterable[tuple[int, ...]]
    ):
        pairs = sorted(
            (tuple(f[p] for p in order), f) for f in facts
        )
        self.order = order
        self.keys = [key for key, _ in pairs]
        self.rows = [row for _, row in pairs]

    def prober(self, prefix_len: int):
        """A ``get`` callable probing on the first ``prefix_len`` lex
        columns; takes a bare id when ``prefix_len == 1`` (matching the
        single-position hash-index contract), a tuple otherwise.
        Returns the matching rows or None."""
        keys = self.keys
        rows = self.rows
        if prefix_len == 1:

            def get(value):
                lo = bisect_left(keys, (value,))
                hi = bisect_left(keys, (value, _SUP), lo)
                return rows[lo:hi] if hi > lo else None

        else:

            def get(key):
                lo = bisect_left(keys, key)
                hi = bisect_left(keys, key + (_SUP,), lo)
                return rows[lo:hi] if hi > lo else None

        return get


# ----------------------------------------------------------------------
# Interned fact storage
# ----------------------------------------------------------------------


class SetDatabase:
    """Facts over interned ids, with bitset mirrors of unary relations
    and incrementally-maintained per-predicate hash indexes.

    ``add`` touches only the indexes of the inserted fact's predicate
    (they are registered per predicate), keeping bulk insertion linear.
    Arity-1 facts additionally set their element's bit in the
    predicate's bitset, which is what the monadic fast paths of the
    evaluator operate on.
    """

    __slots__ = (
        "interner",
        "_facts",
        "_bits",
        "_indexes",
        "_lex",
        "_selection",
        "_ever_built",
        "index_stats",
    )

    def __init__(self, interner: Interner | None = None):
        self.interner = interner if interner is not None else Interner()
        self._facts: dict[str, set[tuple[int, ...]]] = {}
        self._bits: dict[str, int] = {}
        #: predicate -> {positions -> {key -> rows}}; keys are scalar
        #: ids for single-position indexes, tuples otherwise.
        self._indexes: dict[str, dict[tuple[int, ...], dict]] = {}
        #: predicate -> {lex column order -> _LexIndex} (built lazily
        #: when an installed IndexSelection routes a probe here)
        self._lex: dict[str, dict[tuple[int, ...], _LexIndex]] = {}
        self._selection: IndexSelection | None = None
        #: (predicate, positions) patterns ever built on this database
        #: -- a second build of the same pattern is a rebuild
        self._ever_built: set = set()
        self.index_stats = IndexStats()

    @classmethod
    def from_edb(
        cls, edb: "Database | Structure | Iterable[Fact]"
    ) -> "SetDatabase":
        """Intern an extensional database.

        For a :class:`Structure` the whole domain is interned first (in
        a deterministic order), so the structure's elements occupy the
        dense low ids of every bitset; constants introduced later by
        built-ins extend the id space above them.

        When every constant is already a dense non-negative int (the
        shape every generated workload and the ``A_td`` encoding use),
        an identity interner is seeded instead and the input fact
        tuples are adopted as the interned tuples -- loading and
        decoding then copy sets at C speed with no per-tuple
        translation.
        """
        if isinstance(edb, SetDatabase):
            # already interned: snapshot instead of re-interning (the
            # cross-backend compare fast path -- load the structure
            # once, hand each backend a cheap copy)
            return edb.snapshot()
        if isinstance(edb, Structure):
            relations = {
                name: edb.relation(name) for name in edb.signature
            }
            domain = edb.domain
        elif isinstance(edb, Database):
            relations = {
                predicate: edb.relation(predicate)
                for predicate in edb.predicates()
            }
            domain = None
        else:
            relations = {}
            for fact in edb:
                relations.setdefault(fact.predicate, set()).add(fact.args)
            domain = None

        values: set = set() if domain is None else set(domain)
        for rel in relations.values():
            for tup in rel:
                values.update(tup)
        dense = values and all(
            type(v) is int and v >= 0 for v in values
        ) and max(values) < 8 * len(values) + 1024

        if dense:
            db = cls(Interner.identity(max(values) + 1))
            for predicate, rel in relations.items():
                for tup in rel:
                    db.add(predicate, tup)
            return db

        db = cls()
        intern = db.interner.intern
        if domain is not None:
            for element in sorted(domain, key=repr):
                intern(element)
        for predicate, rel in relations.items():
            for tup in rel:
                db.add(predicate, tuple(map(intern, tup)))
        return db

    def spawn_delta(self) -> "SetDatabase":
        """An empty database sharing this one's interner (the per-round
        delta of the semi-naive loop)."""
        return SetDatabase(self.interner)

    def snapshot(self) -> "SetDatabase":
        """A mutation-isolated copy sharing this one's interner.

        Fact sets and bitsets are copied at C speed (no per-tuple
        work); indexes are rebuilt lazily on the copy.  Sharing the
        interner is safe because it is append-only -- an evaluation
        that interns fresh builtin outputs on the snapshot extends the
        shared id space without disturbing existing ids.  This is what
        lets a benchmark compare run intern an EDB *once* and hand
        every backend its own evaluation copy.
        """
        copy = SetDatabase(self.interner)
        copy._facts = {
            predicate: set(rel) for predicate, rel in self._facts.items()
        }
        copy._bits = dict(self._bits)
        return copy

    def add_new(self, predicate: str, args: tuple[int, ...]) -> None:
        """Insert a fact the caller guarantees is absent (the delta
        side of the flush: the main database's ``add`` already
        deduplicated it).  Skips the membership test; indexes are
        still maintained."""
        self._facts.setdefault(predicate, set()).add(args)
        if len(args) == 1:
            self._bits[predicate] = self._bits.get(predicate, 0) | (
                1 << args[0]
            )
        indexes = self._indexes.get(predicate)
        if indexes:
            for positions, index in indexes.items():
                if len(positions) == 1:
                    key = args[positions[0]]
                else:
                    key = tuple(args[i] for i in positions)
                index.setdefault(key, []).append(args)
        if self._lex and predicate in self._lex:
            del self._lex[predicate]

    def add(self, predicate: str, args: tuple[int, ...]) -> bool:
        """Insert an interned fact; True iff new."""
        rel = self._facts.setdefault(predicate, set())
        if args in rel:
            return False
        rel.add(args)
        if len(args) == 1:
            self._bits[predicate] = self._bits.get(predicate, 0) | (
                1 << args[0]
            )
        indexes = self._indexes.get(predicate)
        if indexes:
            for positions, index in indexes.items():
                if len(positions) == 1:
                    key = args[positions[0]]
                else:
                    key = tuple(args[i] for i in positions)
                index.setdefault(key, []).append(args)
        if self._lex and predicate in self._lex:
            del self._lex[predicate]
        return True

    def relation(self, predicate: str) -> set[tuple[int, ...]]:
        return self._facts.get(predicate, _EMPTY_SET)

    def bits(self, predicate: str) -> int:
        """The bitset of an arity-1 predicate (0 when empty/absent)."""
        return self._bits.get(predicate, 0)

    def contains(self, predicate: str, args: tuple[int, ...]) -> bool:
        return args in self._facts.get(predicate, _EMPTY_SET)

    def fact_count(self) -> int:
        return sum(len(rel) for rel in self._facts.values())

    def predicates(self):
        return iter(self._facts)

    def _check_positions(
        self, predicate: str, positions: tuple[int, ...]
    ) -> None:
        """Validate index positions against the relation's arity at
        build time (an out-of-range position would otherwise silently
        produce an empty index and empty join results)."""
        rel = self._facts.get(predicate)
        if not rel:
            return  # empty relation: arity unknown, nothing to probe
        arity = len(next(iter(rel)))
        bad = [p for p in positions if p < 0 or p >= arity]
        if bad:
            raise ValueError(
                f"index positions {bad} out of range for predicate "
                f"{predicate!r} of arity {arity}"
            )

    def index_for(self, predicate: str, positions: tuple[int, ...]) -> dict:
        """The hash index of ``predicate`` on ``positions``; built
        lazily, maintained incrementally by :meth:`add`.  Single-
        position indexes use the bare id as key (no tuple allocation on
        the probe side)."""
        per_pred = self._indexes.setdefault(predicate, {})
        index = per_pred.get(positions)
        if index is None:
            self._check_positions(predicate, positions)
            stats = self.index_stats
            stats.builds += 1
            pattern = (predicate, positions)
            if pattern in self._ever_built:
                stats.rebuilds += 1
            else:
                self._ever_built.add(pattern)
            index = {}
            if len(positions) == 1:
                p = positions[0]
                for args in self._facts.get(predicate, ()):
                    index.setdefault(args[p], []).append(args)
            else:
                for args in self._facts.get(predicate, ()):
                    key = tuple(args[i] for i in positions)
                    index.setdefault(key, []).append(args)
            per_pred[positions] = index
        return index

    def use_index_selection(self, selection: IndexSelection | None) -> None:
        """Install a MinIndexSelection result: search signatures it
        covers with a shared lexicographic index resolve through
        :meth:`probe_plan` to prefix probes of one `_LexIndex` per
        chain; uncovered signatures keep per-pattern hash indexes."""
        self._selection = selection

    def _lex_for(
        self, predicate: str, order: tuple[int, ...]
    ) -> _LexIndex:
        per_pred = self._lex.setdefault(predicate, {})
        lex = per_pred.get(order)
        if lex is None:
            self._check_positions(predicate, order)
            stats = self.index_stats
            stats.lex_builds += 1
            pattern = (predicate, ("lex",) + order)
            if pattern in self._ever_built:
                stats.lex_rebuilds += 1
            else:
                self._ever_built.add(pattern)
            lex = _LexIndex(order, self._facts.get(predicate, ()))
            per_pred[order] = lex
        return lex

    def probe_plan(self, predicate: str, positions: tuple[int, ...]):
        """Resolve a search signature to ``(get, key_order)``.

        ``get`` maps a probe key to matching rows (or None);
        ``key_order`` lists the positions in the order the key tuple
        must be assembled -- sorted positions for a hash index, the
        chain's lexicographic column order for a shared lex index.  A
        bare id is accepted instead of a 1-tuple when the key has one
        position (both index kinds honour the single-position
        fast path)."""
        selection = self._selection
        if selection is not None:
            spec = selection.probe_spec(predicate, positions)
            if spec is not None:
                order, prefix_len = spec
                lex = self._lex_for(predicate, order)
                return lex.prober(prefix_len), order[:prefix_len]
        return self.index_for(predicate, positions).get, positions

    def decode_relation(self, predicate: str) -> set[tuple]:
        """Decode one relation to raw-value tuples (the lazy boundary:
        a goal-directed caller decodes its answer predicate and nothing
        else)."""
        rel = self._facts.get(predicate, _EMPTY_SET)
        if self.interner.is_identity:
            return set(rel)
        value_of = self.interner.value_of
        return {tuple(value_of(i) for i in args) for args in rel}

    def copy_relation(self, src: str, dst: str) -> None:
        """Alias ``src``'s facts under predicate ``dst`` -- entirely in
        interned-id space, and in bulk: the fact set is copied/unioned
        at C speed like :meth:`snapshot` (the old tuple-at-a-time loop
        through :meth:`add` re-maintained bitsets and indexes per
        fact), and the unary bitset is OR-ed in one big-int op.  Any
        existing hash indexes of ``dst`` are *extended* with the facts
        the union actually added (this used to invalidate them
        wholesale, so every copy/probe cycle rebuilt ``dst``'s indexes
        from scratch -- `IndexStats.rebuilds` now stays flat across
        such churn).  This is how the magic backend surfaces adorned
        answers under the original predicate name without decoding at
        the backend boundary."""
        src_rel = self._facts.get(src)
        if not src_rel:
            return
        dst_rel = self._facts.get(dst)
        if dst_rel:
            fresh: "set | frozenset" = src_rel - dst_rel
            dst_rel |= fresh
        else:
            fresh = src_rel
            self._facts[dst] = set(src_rel)
        if not fresh:
            return
        src_bits = self._bits.get(src)
        if src_bits is not None:
            self._bits[dst] = self._bits.get(dst, 0) | src_bits
        indexes = self._indexes.get(dst)
        if indexes:
            for positions, index in indexes.items():
                if len(positions) == 1:
                    p = positions[0]
                    for args in fresh:
                        index.setdefault(args[p], []).append(args)
                else:
                    for args in fresh:
                        key = tuple(args[i] for i in positions)
                        index.setdefault(key, []).append(args)
        if self._lex and dst in self._lex:
            del self._lex[dst]  # sorted arrays rebuild lazily

    def decode(self) -> Database:
        """Materialize a plain value-level :class:`Database`."""
        if self.interner.is_identity:
            return Database.from_relations(
                {
                    predicate: set(rel)
                    for predicate, rel in self._facts.items()
                }
            )
        value = self.interner.value_of
        return Database.from_relations(
            {
                predicate: {
                    tuple(value(i) for i in args) for args in rel
                }
                for predicate, rel in self._facts.items()
            }
        )


# ----------------------------------------------------------------------
# Columnar batches
# ----------------------------------------------------------------------


class Batch:
    """A set of bindings, stored columnar: variable -> parallel list."""

    __slots__ = ("columns", "length")

    def __init__(self, columns: dict[Variable, list[int]], length: int):
        self.columns = columns
        self.length = length


class BitBatch:
    """A single-variable batch stored as a bitset.

    Used while a rule body is a chain of unary steps over one variable
    -- the defining shape of monadic datalog -- so successive steps run
    as word-parallel ``&`` / ``& ~`` on one int.
    """

    __slots__ = ("var", "bits")

    def __init__(self, var: Variable, bits: int):
        self.var = var
        self.bits = bits


def _materialize(batch: BitBatch) -> Batch:
    column = list(iter_bits(batch.bits))
    return Batch({batch.var: column}, len(column))


def _size(batch: "Batch | BitBatch") -> int:
    if type(batch) is BitBatch:
        return batch.bits.bit_count()
    return batch.length


def _take(batch: Batch, keep: list[int]) -> Batch:
    if len(keep) == batch.length:
        return batch
    return Batch(
        {v: [col[r] for r in keep] for v, col in batch.columns.items()},
        len(keep),
    )


# ----------------------------------------------------------------------
# Step compilation: classify each atom position once per plan, not once
# per binding (the classification is static given the join order).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _CompiledStep:
    kind: str  # "relation" | "builtin" | "negation"
    body_index: int
    predicate: str
    arity: int
    atom: Atom
    consts: tuple[tuple[int, object], ...]  # (position, raw value)
    bound: tuple[tuple[int, Variable], ...]  # already-bound variables
    free: tuple[tuple[int, Variable], ...]  # first occurrences
    dups: tuple[tuple[int, int], ...]  # repeated free var: (pos, first pos)
    #: variables still needed by later steps or the head -- batch
    #: columns outside this set are projected away by the step
    live: frozenset[Variable]


@dataclass(frozen=True)
class _CompiledHead:
    predicate: str
    arity: int
    consts: tuple[tuple[int, object], ...]
    vars: tuple[tuple[int, Variable], ...]


def _compile_steps(
    rule: Rule, plan: tuple[PlanStep, ...]
) -> tuple[_CompiledStep, ...]:
    # live-after set per step: the head's variables plus everything a
    # later step still reads (classic projection push-down)
    acc = set(rule.head.variables())
    live_after: list[frozenset[Variable]] = [frozenset()] * len(plan)
    for i in range(len(plan) - 1, -1, -1):
        live_after[i] = frozenset(acc)
        acc.update(plan[i].literal.atom.variables())

    bound_vars: set[Variable] = set()
    out: list[_CompiledStep] = []
    for step_index, step in enumerate(plan):
        atom = step.literal.atom
        consts: list[tuple[int, object]] = []
        bound: list[tuple[int, Variable]] = []
        free: list[tuple[int, Variable]] = []
        dups: list[tuple[int, int]] = []
        first_pos: dict[Variable, int] = {}
        for pos, arg in enumerate(atom.args):
            if isinstance(arg, Constant):
                consts.append((pos, arg.value))
            elif arg in bound_vars:
                bound.append((pos, arg))
            elif arg in first_pos:
                dups.append((pos, first_pos[arg]))
            else:
                first_pos[arg] = pos
                free.append((pos, arg))
        out.append(
            _CompiledStep(
                kind=step.kind,
                body_index=step.body_index,
                predicate=atom.predicate,
                arity=atom.arity,
                atom=atom,
                consts=tuple(consts),
                bound=tuple(bound),
                free=tuple(free),
                dups=tuple(dups),
                live=live_after[step_index],
            )
        )
        bound_vars.update(atom.variables())
    return tuple(out)


def _compile_head(head: Atom) -> _CompiledHead:
    consts: list[tuple[int, object]] = []
    hvars: list[tuple[int, Variable]] = []
    for pos, arg in enumerate(head.args):
        if isinstance(arg, Constant):
            consts.append((pos, arg.value))
        else:
            hvars.append((pos, arg))
    return _CompiledHead(
        head.predicate, head.arity, tuple(consts), tuple(hvars)
    )


def _fact_shaped_keys(cstep: _CompiledStep, batch: Batch, consts):
    """Per-row candidate fact tuples for fully-bound (semi-join /
    negation) steps; position order, so they compare against the
    stored facts directly."""
    n = batch.length
    sources: list = [None] * cstep.arity
    for pos, cid in consts:
        sources[pos] = repeat(cid, n)
    for pos, var in cstep.bound:
        sources[pos] = batch.columns[var]
    return zip(*sources)


# ----------------------------------------------------------------------
# The evaluator
# ----------------------------------------------------------------------


class SetSemiNaiveEvaluator:
    """Stratified semi-naive evaluation, executed set-at-a-time.

    Drop-in interface match for
    :class:`repro.datalog.evaluate.SemiNaiveEvaluator`: same
    constructor, same :meth:`evaluate` contract (returns a value-level
    :class:`Database` holding extensional plus derived facts), same
    :class:`EvaluationStats` counters -- except ``rule_firings`` counts
    batch rows, so duplicate bindings collapsed by a bitset step are
    counted once.
    """

    def __init__(
        self,
        program: Program,
        registry: BuiltinRegistry | None = None,
        prepared: PreparedProgram | None = None,
        profile: PlanProfile | None = None,
        apply_index_selection: bool = True,
    ):
        if prepared is None:
            prepared = prepare_program(program, registry)
        self.prepared = prepared
        self.program = prepared.program
        self.registry = prepared.registry
        self.idb = prepared.idb
        self.strata = list(prepared.strata)
        self.stats = EvaluationStats()
        #: set to a PlanProfile to record per-step cardinalities and
        #: per-signature probe fanout during :meth:`run` (the
        #: profiling half of the profile -> replan loop)
        self.profile = profile
        self._apply_selection = apply_index_selection
        self._steps = tuple(
            _compile_steps(rule, plan)
            for rule, plan in zip(prepared.program.rules, prepared.plans)
        )
        self._heads = tuple(
            _compile_head(rule.head) for rule in prepared.program.rules
        )
        #: per (rule, step): the probe step's (predicate, sorted key
        #: positions) search signature, or None for non-probe steps --
        #: what the profiler keys probe counts by
        self._probe_sigs = tuple(
            tuple(
                (
                    cstep.predicate,
                    tuple(
                        sorted(
                            [p for p, _ in cstep.consts]
                            + [p for p, _ in cstep.bound]
                        )
                    ),
                )
                if cstep.kind == "relation"
                and cstep.free
                and (cstep.consts or cstep.bound)
                else None
                for cstep in steps
            )
            for steps in self._steps
        )

    @classmethod
    def from_prepared(
        cls, prepared: PreparedProgram, **kwargs
    ) -> "SetSemiNaiveEvaluator":
        return cls(prepared.program, prepared=prepared, **kwargs)

    # -- public API -----------------------------------------------------

    def evaluate(
        self, edb: "Database | Iterable[Fact] | Structure"
    ) -> Database:
        """Least fixpoint of ``P ∪ A`` as a value-level database."""
        return self.run(SetDatabase.from_edb(edb)).decode()

    def run(self, db: SetDatabase) -> SetDatabase:
        """The fixpoint over an already-interned database (kept
        interned; :meth:`evaluate` is the decoding wrapper)."""
        if (
            self._apply_selection
            and self.prepared.index_selection is not None
        ):
            db.use_index_selection(self.prepared.index_selection)
        for stratum_plan in self.prepared.stratum_plans:
            if not any(stratum_plan.recursive_positions):
                # single-pass route: an SCC-refined nonrecursive
                # stratum never consumes its own output, so one firing
                # is its fixpoint -- no delta database, no re-fire
                derived: list[tuple[str, tuple[int, ...]]] = []
                for rule_index in stratum_plan.rule_indices:
                    self._fire(rule_index, db, derived, None, None)
                stats = self.stats
                add = db.add
                for predicate, args in derived:
                    if add(predicate, args):
                        stats.facts_derived += 1
                continue
            # round 0: every rule once against the current database
            delta = db.spawn_delta()
            derived = []
            for rule_index in stratum_plan.rule_indices:
                self._fire(rule_index, db, derived, None, None)
            self._flush(db, delta, derived)

            # subsequent rounds: delta-restricted re-evaluation
            while delta.fact_count():
                self.stats.iterations += 1
                new_delta = db.spawn_delta()
                derived = []
                for rule_index, positions in zip(
                    stratum_plan.rule_indices,
                    stratum_plan.recursive_positions,
                ):
                    for body_index in positions:
                        self._fire(
                            rule_index, db, derived, body_index, delta
                        )
                self._flush(db, new_delta, derived)
                delta = new_delta
        if self.profile is not None:
            self.profile.record_sizes(db)
            self.profile.record_rounds(self.stats.iterations)
        return db

    def _flush(
        self,
        db: SetDatabase,
        delta: SetDatabase,
        derived: list[tuple[str, tuple[int, ...]]],
    ) -> None:
        stats = self.stats
        add = db.add
        delta_add = delta.add_new
        for predicate, args in derived:
            if add(predicate, args):
                delta_add(predicate, args)
                stats.facts_derived += 1

    # -- rule execution -------------------------------------------------

    def _fire(
        self,
        rule_index: int,
        db: SetDatabase,
        out: list[tuple[str, tuple[int, ...]]],
        delta_index: int | None,
        delta: SetDatabase | None,
    ) -> None:
        batch: Batch | BitBatch = Batch({}, 1)
        profile = self.profile
        stats = self.stats
        for step_index, cstep in enumerate(self._steps[rule_index]):
            n_in = _size(batch) if profile is not None else 0
            from_delta = (
                delta_index is not None
                and cstep.body_index == delta_index
            )
            if cstep.kind == "relation":
                source = delta if from_delta else db
                batch = self._join(batch, cstep, source, db.interner)
            elif cstep.kind == "builtin":
                batch = self._builtin(batch, cstep, db.interner)
            else:
                batch = self._negate(batch, cstep, db)
            n_out = _size(batch)
            stats.bindings_explored += n_out
            if profile is not None:
                profile.record_step(rule_index, step_index, n_in, n_out)
                sig = self._probe_sigs[rule_index][step_index]
                if sig is not None and not from_delta:
                    # fanout of the full relation only: a delta probe's
                    # hit rate says nothing about the stored index
                    profile.record_probe(sig[0], sig[1], n_in, n_out)
            if not n_out:
                return
        self._project(rule_index, batch, db.interner, out)

    # NOTE: _join/_builtin/_negate have a raw-value twin in
    # grounding._instantiate_batch (grounding runs before interning).
    # A semantics fix here must be mirrored there.
    def _join(
        self,
        batch: "Batch | BitBatch",
        cstep: _CompiledStep,
        source: SetDatabase,
        interner: Interner,
    ) -> "Batch | BitBatch":
        predicate = cstep.predicate
        if type(batch) is BitBatch:
            if cstep.arity == 1 and not cstep.free:
                if cstep.bound:  # p(V) with V the batch variable
                    return BitBatch(
                        batch.var, batch.bits & source.bits(predicate)
                    )
                cid = interner.intern(cstep.consts[0][1])
                if (source.bits(predicate) >> cid) & 1:
                    return batch
                return BitBatch(batch.var, 0)
            batch = _materialize(batch)

        n = batch.length
        columns = batch.columns
        consts = [
            (pos, interner.intern(value)) for pos, value in cstep.consts
        ]

        if not cstep.free:  # semi-join: every position already bound
            if cstep.arity == 0:
                rel = source.relation(predicate)
                return batch if () in rel else Batch(
                    {v: [] for v in columns}, 0
                )
            if cstep.arity == 1:
                bits = source.bits(predicate)
                if consts:
                    if (bits >> consts[0][1]) & 1:
                        return batch
                    return Batch({v: [] for v in columns}, 0)
                column = columns[cstep.bound[0][1]]
                keep = [
                    r for r in range(n) if (bits >> column[r]) & 1
                ]
                return _take(batch, keep)
            rel = source.relation(predicate)
            keep = [
                r
                for r, key in enumerate(
                    _fact_shaped_keys(cstep, batch, consts)
                )
                if key in rel
            ]
            return _take(batch, keep)

        dups = cstep.dups
        key_positions = tuple(
            sorted(
                [pos for pos, _ in consts] + [pos for pos, _ in cstep.bound]
            )
        )

        live = cstep.live
        if not key_positions:  # relation scan (round-0 first steps)
            facts = source.relation(predicate)
            if dups:
                facts = [
                    f
                    for f in facts
                    if all(f[p] == f[q] for p, q in dups)
                ]
            if not columns:  # unit batch: the scan IS the result
                if cstep.arity == 1:
                    return BitBatch(
                        cstep.free[0][1], source.bits(predicate)
                    )
                if not facts:
                    return Batch({var: [] for _, var in cstep.free}, 0)
                # transpose at C speed, then pick the needed columns
                transposed = list(zip(*facts))
                return Batch(
                    {
                        var: list(transposed[pos])
                        for pos, var in cstep.free
                        if var in live
                    },
                    len(facts),
                )
            # cross product against an unrestricted relation: rare (the
            # planner prefers bound steps), but keep it correct.
            facts = list(facts)
            out_columns = {v: [] for v in columns if v in live}
            out_columns.update(
                {var: [] for _, var in cstep.free if var in live}
            )
            old = [
                (out_columns[v].append, columns[v])
                for v in columns
                if v in live
            ]
            new = [
                (out_columns[var].append, pos)
                for pos, var in cstep.free
                if var in live
            ]
            for r in range(n):
                for fact in facts:
                    for append, col in old:
                        append(col[r])
                    for append, pos in new:
                        append(fact[pos])
            return Batch(out_columns, n * len(facts))

        # relation-level join: one index probe handle per step, probed
        # per row.  probe_plan resolves the search signature to either
        # the per-pattern hash index or a shared lexicographic index
        # (key assembled in the chain's column order, not sorted order)
        get, key_order = source.probe_plan(predicate, key_positions)
        by_pos: dict[int, object] = {pos: cid for pos, cid in consts}
        for pos, var in cstep.bound:
            by_pos[pos] = columns[var]
        if len(key_order) == 1:
            key_source = by_pos[key_order[0]]
            keys = (
                repeat(key_source, n)
                if not isinstance(key_source, list)
                else key_source
            )
        else:
            keys = zip(
                *(
                    repeat(by_pos[pos], n)
                    if not isinstance(by_pos[pos], list)
                    else by_pos[pos]
                    for pos in key_order
                )
            )

        out_columns = {v: [] for v in columns if v in live}
        out_columns.update(
            {var: [] for _, var in cstep.free if var in live}
        )
        old = [
            (out_columns[v].append, columns[v])
            for v in columns
            if v in live
        ]
        new = [
            (out_columns[var].append, pos)
            for pos, var in cstep.free
            if var in live
        ]
        count = 0
        for r, key in enumerate(keys):
            matches = get(key)
            if not matches:
                continue
            if dups:
                matches = [
                    f
                    for f in matches
                    if all(f[p] == f[q] for p, q in dups)
                ]
                if not matches:
                    continue
            for append, col in old:
                value = col[r]
                for _ in matches:
                    append(value)
            for append, pos in new:
                for fact in matches:
                    append(fact[pos])
            count += len(matches)
        return Batch(out_columns, count)

    def _negate(
        self,
        batch: "Batch | BitBatch",
        cstep: _CompiledStep,
        db: SetDatabase,
    ) -> "Batch | BitBatch":
        predicate = cstep.predicate
        if cstep.free or cstep.dups:
            raise UnsafeRuleError(
                f"negated atom {cstep.atom} not fully bound"
            )
        registry = self.registry
        is_builtin = predicate in registry and predicate not in self.idb
        interner = db.interner

        if type(batch) is BitBatch:
            if cstep.arity == 1 and not is_builtin:
                if cstep.bound:
                    # complement against the batch, which is a subset of
                    # the interned domain -- no unbounded ~ needed
                    return BitBatch(
                        batch.var, batch.bits & ~db.bits(predicate)
                    )
                cid = interner.intern(cstep.consts[0][1])
                if (db.bits(predicate) >> cid) & 1:
                    return BitBatch(batch.var, 0)
                return batch
            batch = _materialize(batch)

        n = batch.length
        columns = batch.columns
        consts = [
            (pos, interner.intern(value)) for pos, value in cstep.consts
        ]

        if is_builtin:
            builtin = registry.get(predicate)
            value_of = interner.value_of
            sources: list = [None] * cstep.arity
            for pos, value in cstep.consts:
                sources[pos] = repeat(value, n)
            for pos, var in cstep.bound:
                sources[pos] = [value_of(i) for i in columns[var]]
            patterns = (
                zip(*sources) if cstep.arity else repeat((), n)
            )
            keep = [
                r
                for r, pattern in enumerate(patterns)
                if not any(builtin.evaluate(pattern))
            ]
            return _take(batch, keep)

        if cstep.arity == 0:
            if () in db.relation(predicate):
                return Batch({v: [] for v in columns}, 0)
            return batch
        if cstep.arity == 1:
            bits = db.bits(predicate)
            if consts:
                if (bits >> consts[0][1]) & 1:
                    return Batch({v: [] for v in columns}, 0)
                return batch
            column = columns[cstep.bound[0][1]]
            keep = [
                r for r in range(n) if not (bits >> column[r]) & 1
            ]
            return _take(batch, keep)
        rel = db.relation(predicate)
        keep = [
            r
            for r, key in enumerate(_fact_shaped_keys(cstep, batch, consts))
            if key not in rel
        ]
        return _take(batch, keep)

    def _builtin(
        self,
        batch: "Batch | BitBatch",
        cstep: _CompiledStep,
        interner: Interner,
    ) -> Batch:
        if type(batch) is BitBatch:
            batch = _materialize(batch)
        builtin = self.registry.get(cstep.predicate)
        n = batch.length
        columns = batch.columns
        value_of = interner.value_of
        intern = interner.intern

        # built-ins see raw values; ids are decoded on the way in and
        # fresh values (e.g. built sets) interned on the way out
        sources: list = [None] * cstep.arity
        for pos, value in cstep.consts:
            sources[pos] = repeat(value, n)
        for pos, var in cstep.bound:
            sources[pos] = [value_of(i) for i in columns[var]]
        for pos, _ in cstep.free:
            sources[pos] = repeat(UNBOUND, n)
        for pos, _ in cstep.dups:
            sources[pos] = repeat(UNBOUND, n)
        patterns = zip(*sources) if cstep.arity else repeat((), n)

        live = cstep.live
        out_columns = {v: [] for v in columns if v in live}
        out_columns.update(
            {var: [] for _, var in cstep.free if var in live}
        )
        old = [
            (out_columns[v].append, columns[v])
            for v in columns
            if v in live
        ]
        new = [
            (out_columns[var].append, pos)
            for pos, var in cstep.free
            if var in live
        ]
        dups = cstep.dups
        count = 0
        for r, pattern in enumerate(patterns):
            for solution in builtin.evaluate(pattern):
                if dups and not all(
                    solution[p] == solution[q] for p, q in dups
                ):
                    continue
                for append, col in old:
                    append(col[r])
                for append, pos in new:
                    append(intern(solution[pos]))
                count += 1
        return Batch(out_columns, count)

    def _project(
        self,
        rule_index: int,
        batch: "Batch | BitBatch",
        interner: Interner,
        out: list[tuple[str, tuple[int, ...]]],
    ) -> None:
        head = self._heads[rule_index]
        predicate = head.predicate
        if type(batch) is BitBatch:
            if head.arity == 1 and not head.consts:
                bits = batch.bits
                self.stats.rule_firings += bits.bit_count()
                out.extend((predicate, (i,)) for i in iter_bits(bits))
                return
            batch = _materialize(batch)
        n = batch.length
        self.stats.rule_firings += n
        if head.arity == 0:
            if n:
                out.append((predicate, ()))
            return
        sources: list = [None] * head.arity
        for pos, value in head.consts:
            sources[pos] = repeat(interner.intern(value), n)
        for pos, var in head.vars:
            sources[pos] = batch.columns[var]
        if head.arity == 1:
            out.extend((predicate, (x,)) for x in sources[0])
        else:
            out.extend((predicate, args) for args in zip(*sources))


def set_least_fixpoint(
    program: Program,
    edb: "Database | Iterable[Fact] | Structure",
    registry: BuiltinRegistry | None = None,
) -> Database:
    """Convenience wrapper: set-at-a-time semi-naive least fixpoint."""
    return SetSemiNaiveEvaluator(program, registry).evaluate(edb)
