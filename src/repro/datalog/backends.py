"""Pluggable evaluation backends and the compiled-program cache.

The engine exposes one narrow seam -- :class:`EvaluationBackend` -- so
callers (``core/solver.py``, the problem modules, the benchmark
harness) pick *how* a program is evaluated without knowing the
mechanics.  Three backends ship:

* ``naive``            -- Jacobi-style re-derivation each round
                          (ablation baseline);
* ``semi-naive``       -- stratified delta-driven fixpoint executed
                          set-at-a-time (:mod:`repro.datalog.setengine`:
                          interned constants, columnar batches,
                          relation-level hash joins, bitset unary
                          relations); the default engine;
* ``semi-naive-tuple`` -- the tuple-at-a-time execution of the same
                          plans (:class:`SemiNaiveEvaluator`); kept as
                          the ablation baseline for the set-at-a-time
                          speedup benchmark;
* ``magic``            -- magic-set / demand transformation relative to
                          a query atom (:mod:`repro.datalog.magic`)
                          followed by set-at-a-time semi-naive
                          evaluation of the rewritten program:
                          goal-directed, derives only query-relevant
                          facts.

All of them share :class:`ProgramCache`, keyed by ``(program
fingerprint, signature, width)`` (plus the query pattern for magic
rewrites), so repeated solves over different structures skip rule
planning, stratification, and the magic rewriting itself -- the
per-program cost that Theorem 4.5 amortizes over "any number of
structures".

Adding a backend is ``register_backend("name", factory)``; future
candidates (sharded, async, external-solver) plug in the same way.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from .ast import Atom, Program, Variable
from .builtins import BuiltinRegistry, standard_registry
from .evaluate import (
    Database,
    EvaluationStats,
    PreparedProgram,
    SemiNaiveEvaluator,
    naive_least_fixpoint,
    prepare_program,
)
from .grounding import PreparedGrounding, prepare_grounding
from .magic import MagicRewrite, magic_rewrite, normalize_query
from .profile import CostModel, PlanProfile
from .setengine import SetDatabase, SetSemiNaiveEvaluator

#: the registry that ``registry=None`` resolves to inside the cache, so
#: default callers share cache entries instead of each fresh
#: ``standard_registry()`` object keying its own.
_SHARED_STANDARD = standard_registry()


# ----------------------------------------------------------------------
# Program fingerprinting and the compiled-program cache
# ----------------------------------------------------------------------


def _value_key(value) -> str:
    """A canonical, type-discriminating encoding of a constant value.

    ``str()``/``repr()`` alone are ambiguous (``0`` vs ``"0"``) or
    order-unstable (frozensets), which would let distinct programs
    collide in the cache; this recurses through the container values
    the set-valued programs of Section 5 use.
    """
    if isinstance(value, frozenset):
        return "fs{" + ",".join(sorted(map(_value_key, value))) + "}"
    if isinstance(value, tuple):
        return "t(" + ",".join(map(_value_key, value)) + ")"
    return f"{type(value).__qualname__}:{value!r}"


def _term_key(term) -> str:
    if isinstance(term, Variable):
        return f"v:{term.name}"
    return f"c:{_value_key(term.value)}"


def _atom_key(atom: Atom) -> str:
    return atom.predicate + "(" + ",".join(map(_term_key, atom.args)) + ")"


def _query_key(query: Atom) -> str:
    """Like :func:`_atom_key` but alpha-invariant: a free argument slot
    contributes only its position, so ``path(0, Y)`` and ``path(0, Z)``
    share one magic rewrite (variable names never reach the rewrite --
    only the adornment and the bound constants do)."""
    slots = (
        "f" if isinstance(arg, Variable) else "b:" + _value_key(arg.value)
        for arg in query.args
    )
    return query.predicate + "(" + ",".join(slots) + ")"


def program_fingerprint(program: Program) -> str:
    """A stable content hash of a program.

    Two programs with the same rules (in order) and built-in names get
    the same fingerprint regardless of object identity, so re-parsed or
    re-compiled programs hit the cache; constants of different types
    that print alike do not collide.
    """
    digest = hashlib.sha256()
    for rule in program.rules:
        digest.update(_atom_key(rule.head).encode())
        for literal in rule.body:
            digest.update(
                ("+" if literal.positive else "-").encode()
            )
            digest.update(_atom_key(literal.atom).encode())
        digest.update(b"\x00")
    for name in sorted(program.builtin_names):
        digest.update(name.encode())
        digest.update(b"\x01")
    return digest.hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: lookups that missed, built, and then found the entry already
    #: inserted by a concurrent thread (the build ran outside the lock,
    #: so two simultaneous first lookups may both pay it; the earlier
    #: insert wins and the later build is discarded -- and counted here)
    duplicate_builds: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class ProgramCache:
    """LRU cache of per-program compilation artifacts.

    Entries are keyed by ``(kind, program fingerprint, signature,
    width, registry)``; the magic-rewrite kind adds the query pattern
    (predicate, adornment, bound constants).  ``signature`` and
    ``width`` are the solver-level context -- the same datalog program
    compiled for a different signature or width is a different entry.

    Built-in registries enter the key by *identity*: two registries
    with the same predicate names may give them different semantics
    (``primality_registry`` bakes the schema into its built-ins), so
    name-based sharing would cross-contaminate.  ``registry=None``
    resolves to one shared standard registry, so default callers still
    share entries.  Cached artifacts keep their registry alive, which
    is what makes identity keys safe against id reuse.

    The cache is **thread-safe**: ``default_cache()`` is one
    process-wide instance and the solver service's scheduler threads
    hit it concurrently, so every touch of the LRU ``OrderedDict``s
    (get / ``move_to_end`` / insert / evict) happens under one
    re-entrant lock.  Builds run *outside* the lock -- planning a
    program can be expensive and must not serialize unrelated lookups
    -- so two threads racing on the same cold key may both build; the
    insert is re-checked under the lock, the first entry wins, and the
    loser is counted in ``stats.duplicate_builds``.
    """

    def __init__(self, maxsize: int = 256):
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        # fingerprint memo keyed by object identity; holding the
        # Program pins its id, so entries can never be misattributed
        self._fingerprints: OrderedDict[int, tuple[Program, str]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._fingerprints.clear()
            self.stats = CacheStats()

    def __getstate__(self):
        # locks don't pickle; a cache crossing a process boundary (the
        # service worker handoff) starts empty on the other side
        return {"maxsize": self.maxsize}

    def __setstate__(self, state):
        self.__init__(state["maxsize"])

    def _fingerprint_of(self, program: Program) -> str:
        """Per-lookup fingerprinting would re-hash the whole program on
        every solve -- exactly the per-structure cost this cache
        amortizes -- so memoize by identity."""
        with self._lock:
            entry = self._fingerprints.get(id(program))
            if entry is not None:
                self._fingerprints.move_to_end(id(program))
                return entry[1]
        fingerprint = program_fingerprint(program)
        with self._lock:
            self._fingerprints[id(program)] = (program, fingerprint)
            if len(self._fingerprints) > self.maxsize:
                self._fingerprints.popitem(last=False)
        return fingerprint

    def _get_or_build(self, key: tuple, build: Callable[[], object]):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return entry
            self.stats.misses += 1
        entry = build()  # outside the lock: builds must not serialize
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # a concurrent thread built and inserted first; keep
                # its entry (callers may already hold references to it)
                self.stats.duplicate_builds += 1
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = entry
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return entry

    @staticmethod
    def _resolve_registry(
        registry: BuiltinRegistry | None,
    ) -> BuiltinRegistry:
        return registry if registry is not None else _SHARED_STANDARD

    @staticmethod
    def _context_key(
        registry: BuiltinRegistry,
        signature=None,
        width: int | None = None,
    ) -> tuple:
        sig = str(signature) if signature is not None else None
        return (sig, width, id(registry))

    def prepared(
        self,
        program: Program,
        registry: BuiltinRegistry | None = None,
        *,
        signature=None,
        width: int | None = None,
        profile: PlanProfile | None = None,
    ) -> PreparedProgram:
        """Stratification + join plans, computed once per fingerprint.

        ``profile`` (a recorded :class:`PlanProfile`) replans with its
        cost model; profiled entries are keyed by the profile's bucketed
        fingerprint, so the static plans and any materially different
        replans coexist -- and warm service workers looking up the same
        (program, profile) pair hit the cached replanned entry."""
        registry = self._resolve_registry(registry)
        key = (
            "prepared",
            self._fingerprint_of(program),
            profile.fingerprint() if profile is not None else None,
        ) + self._context_key(registry, signature, width)
        cost = CostModel(profile) if profile is not None else None
        return self._get_or_build(
            key, lambda: prepare_program(program, registry, cost=cost)
        )

    def grounding(
        self,
        program: Program,
        registry: BuiltinRegistry | None = None,
        *,
        signature=None,
        width: int | None = None,
        profile: PlanProfile | None = None,
        single_pass: bool = True,
    ) -> PreparedGrounding:
        """Extensional join orders for the Theorem 4.4 pipeline.

        ``single_pass`` is part of the cache key: a prepared grounding
        with deferred sink predicates is NOT interchangeable with the
        plain one for the same program, so differently-optimized
        variants must never alias each other's entries."""
        registry = self._resolve_registry(registry)
        key = (
            "grounding",
            self._fingerprint_of(program),
            profile.fingerprint() if profile is not None else None,
            single_pass,
        ) + self._context_key(registry, signature, width)
        cost = CostModel(profile) if profile is not None else None
        return self._get_or_build(
            key,
            lambda: prepare_grounding(
                program, registry, cost=cost, single_pass=single_pass
            ),
        )

    def magic(
        self,
        program: Program,
        query: Atom,
        registry: BuiltinRegistry | None = None,
        *,
        signature=None,
        width: int | None = None,
        profile: PlanProfile | None = None,
    ) -> tuple[MagicRewrite, PreparedProgram]:
        """The magic rewrite for (program, query), plus its prepared form."""
        registry = self._resolve_registry(registry)
        query_key = _query_key(query)
        key = (
            "magic",
            self._fingerprint_of(program),
            query_key,
            profile.fingerprint() if profile is not None else None,
        ) + self._context_key(registry, signature, width)
        cost = CostModel(profile) if profile is not None else None

        def build() -> tuple[MagicRewrite, PreparedProgram]:
            rewrite = magic_rewrite(program, query, registry, cost=cost)
            return rewrite, prepare_program(
                rewrite.program, registry, cost=cost
            )

        return self._get_or_build(key, build)


_DEFAULT_CACHE = ProgramCache()


def default_cache() -> ProgramCache:
    """The process-wide compiled-program cache."""
    return _DEFAULT_CACHE


# ----------------------------------------------------------------------
# The backend protocol and the three shipped backends
# ----------------------------------------------------------------------


@runtime_checkable
class EvaluationBackend(Protocol):
    """Anything that can compute (a query-relevant part of) the least
    fixpoint of ``P ∪ A`` and hand it back as a :class:`Database`."""

    name: str

    def evaluate(
        self,
        program: Program,
        edb,
        *,
        query: "Atom | str | None" = None,
        registry: BuiltinRegistry | None = None,
        stats: EvaluationStats | None = None,
        signature=None,
        width: int | None = None,
    ) -> Database: ...


class NaiveBackend:
    """Re-fire every rule each round until nothing changes."""

    name = "naive"

    def __init__(self, cache: ProgramCache | None = None):
        self.cache = cache if cache is not None else default_cache()

    def evaluate(
        self,
        program: Program,
        edb,
        *,
        query=None,
        registry: BuiltinRegistry | None = None,
        stats: EvaluationStats | None = None,
        signature=None,
        width: int | None = None,
    ) -> Database:
        prepared = self.cache.prepared(
            program, registry, signature=signature, width=width
        )
        return naive_least_fixpoint(
            program, edb, registry, stats=stats, prepared=prepared
        )


class SemiNaiveBackend:
    """Stratified delta-driven fixpoint, executed set-at-a-time (the
    default backend): interned constants, columnar batches,
    relation-level hash joins, bitset unary relations."""

    name = "semi-naive"

    def __init__(self, cache: ProgramCache | None = None):
        self.cache = cache if cache is not None else default_cache()

    def evaluate_interned(
        self,
        program: Program,
        edb,
        *,
        query=None,
        registry: BuiltinRegistry | None = None,
        stats: EvaluationStats | None = None,
        signature=None,
        width: int | None = None,
    ) -> SetDatabase:
        """The fixpoint, still in interned-id space.  Goal-directed
        callers (``CourcelleSolver``) decode only the relation they
        need instead of the whole database."""
        prepared = self.cache.prepared(
            program, registry, signature=signature, width=width
        )
        evaluator = SetSemiNaiveEvaluator.from_prepared(prepared)
        if stats is not None:
            evaluator.stats = stats
        return evaluator.run(SetDatabase.from_edb(edb))

    def evaluate(
        self,
        program: Program,
        edb,
        *,
        query=None,
        registry: BuiltinRegistry | None = None,
        stats: EvaluationStats | None = None,
        signature=None,
        width: int | None = None,
    ) -> Database:
        return self.evaluate_interned(
            program,
            edb,
            query=query,
            registry=registry,
            stats=stats,
            signature=signature,
            width=width,
        ).decode()


class TupleSemiNaiveBackend:
    """The tuple-at-a-time execution of the same semi-naive plans.

    Semantically identical to ``semi-naive``; retained as the ablation
    baseline so ``bench_datalog_engine.py`` can measure what the
    set-at-a-time representation buys."""

    name = "semi-naive-tuple"

    def __init__(self, cache: ProgramCache | None = None):
        self.cache = cache if cache is not None else default_cache()

    def evaluate(
        self,
        program: Program,
        edb,
        *,
        query=None,
        registry: BuiltinRegistry | None = None,
        stats: EvaluationStats | None = None,
        signature=None,
        width: int | None = None,
    ) -> Database:
        prepared = self.cache.prepared(
            program, registry, signature=signature, width=width
        )
        evaluator = SemiNaiveEvaluator.from_prepared(prepared)
        if stats is not None:
            evaluator.stats = stats
        return evaluator.evaluate(edb)


class MagicSetBackend:
    """Demand-transform relative to ``query``, then run semi-naive.

    The returned database holds the extensional facts, the magic and
    adorned bookkeeping predicates, and -- surfaced back under the
    original predicate name -- every fact of the query predicate that
    the demanded bindings reach.  Facts of *other* intensional
    predicates are only present in adorned form: this backend answers
    the query, it does not materialize the full least fixpoint (that is
    the point).
    """

    name = "magic"

    def __init__(self, cache: ProgramCache | None = None):
        self.cache = cache if cache is not None else default_cache()

    def evaluate_interned(
        self,
        program: Program,
        edb,
        *,
        query=None,
        registry: BuiltinRegistry | None = None,
        stats: EvaluationStats | None = None,
        signature=None,
        width: int | None = None,
    ) -> SetDatabase:
        """Demand-transform and evaluate without leaving id space.

        The magic predicates of a monadic program are nullary or unary,
        so the demand sets this evaluation propagates live as big-int
        bitsets inside the set engine from seed to answer; the adorned
        answers are aliased under the original predicate name while
        still interned.  Nothing is decoded here -- the caller picks
        the relation(s) it wants decoded (or calls :meth:`evaluate`
        for the full value-level database)."""
        if query is None:
            raise ValueError(
                "the magic-set backend is goal-directed: pass query="
                "either a predicate name or an Atom with bound constants"
            )
        query_atom = normalize_query(program, query)
        rewrite, prepared = self.cache.magic(
            program,
            query_atom,
            registry,
            signature=signature,
            width=width,
        )
        evaluator = SetSemiNaiveEvaluator.from_prepared(prepared)
        if stats is not None:
            evaluator.stats = stats
        db = evaluator.run(SetDatabase.from_edb(edb))
        db.copy_relation(rewrite.answer_predicate, query_atom.predicate)
        return db

    def evaluate(
        self,
        program: Program,
        edb,
        *,
        query=None,
        registry: BuiltinRegistry | None = None,
        stats: EvaluationStats | None = None,
        signature=None,
        width: int | None = None,
    ) -> Database:
        return self.evaluate_interned(
            program,
            edb,
            query=query,
            registry=registry,
            stats=stats,
            signature=signature,
            width=width,
        ).decode()


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------

_BACKENDS: dict[str, Callable[..., EvaluationBackend]] = {}


def register_backend(
    name: str, factory: Callable[..., EvaluationBackend]
) -> None:
    """Register a backend factory; ``factory(cache=...)`` must build an
    object satisfying :class:`EvaluationBackend`."""
    _BACKENDS[name] = factory


def available_backends() -> tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def get_backend(
    name: str, cache: ProgramCache | None = None
) -> EvaluationBackend:
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown evaluation backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return factory(cache=cache)


register_backend(NaiveBackend.name, NaiveBackend)
register_backend(SemiNaiveBackend.name, SemiNaiveBackend)
register_backend(TupleSemiNaiveBackend.name, TupleSemiNaiveBackend)
register_backend(MagicSetBackend.name, MagicSetBackend)


def solve(
    program: Program,
    edb,
    *,
    backend: str = "semi-naive",
    query: "Atom | str | None" = None,
    registry: BuiltinRegistry | None = None,
    stats: EvaluationStats | None = None,
    cache: ProgramCache | None = None,
) -> Database:
    """One-shot evaluation through a named backend."""
    return get_backend(backend, cache).evaluate(
        program, edb, query=query, registry=registry, stats=stats
    )
