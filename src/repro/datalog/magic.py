"""Magic-set rewriting (the demand transformation).

Section 6's optimization (2) asks the interpreter to generate "only
those ground instances of rules which actually produce new facts"; the
semi-naive evaluator achieves that *per derivation*, but still
materializes the entire least fixpoint even when only one query atom
matters.  The classic magic-set transformation (Bancilhon-Maier-Sagiv-
Ullman; Beeri-Ramakrishnan) makes evaluation *goal-directed*: the
program is rewritten relative to a query atom so that bottom-up
evaluation of the rewritten program derives only facts relevant to the
query.

The rewriting is the textbook adorned version:

* Each demanded predicate occurrence is *adorned* with a binding
  pattern (``b``/``f`` per argument slot) describing which arguments are
  bound when the occurrence is reached; ``p`` adorned with ``bf``
  becomes the predicate ``p@bf``.
* For every adorned predicate a *magic predicate* ``magic@p@bf`` holds
  the demanded bindings; a rule defining ``p`` becomes a rule for
  ``p@bf`` guarded by ``magic@p@bf``, and each intensional body atom
  spawns a magic rule that passes its demand downward.
* The query seeds the magic predicate of its own adornment with its
  constant arguments.

The sideways-information-passing order is the evaluator's own greedy
join plan (:func:`repro.datalog.evaluate.plan_rule` with the head's
bound variables pre-bound), so demand flows exactly the way the joins
will run.  The rewritten program is executed by the set-at-a-time
engine (:mod:`repro.datalog.setengine`); the magic predicates of a
monadic program are nullary or unary, so the demand sets it introduces
live as interned bitsets there.

Stratified negation is handled conservatively: any predicate occurring
in a negated intensional literal -- together with everything it depends
on -- is marked *total* and kept unrewritten, so its full extent is
available to the negation.  (The compiled programs of Theorem 4.5 only
negate extensional atoms, so they rewrite in full.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast import Atom, Constant, Literal, Program, Rule, Variable
from .builtins import BuiltinRegistry, standard_registry
from .evaluate import plan_rule

__all__ = [
    "MagicRewrite",
    "MagicStats",
    "adorned_base",
    "adorned_name",
    "demanded_predicates",
    "is_magic_predicate",
    "magic_name",
    "magic_rewrite",
    "normalize_query",
]

MAGIC_MARKER = "magic@"


def adorned_name(predicate: str, adornment: str) -> str:
    return f"{predicate}@{adornment}" if adornment else predicate


def magic_name(predicate: str, adornment: str) -> str:
    return f"{MAGIC_MARKER}{predicate}@{adornment}"


def is_magic_predicate(predicate: str) -> bool:
    return predicate.startswith(MAGIC_MARKER)


def adorned_base(predicate: str) -> str:
    """The original predicate an adorned occurrence stands for:
    ``adorned_base("solve@bf") == "solve"``.  Magic (demand) predicates
    have no base; they return themselves."""
    if is_magic_predicate(predicate):
        return predicate
    return predicate.split("@", 1)[0]


@dataclass
class MagicStats:
    """How much of the program the demand transformation kept."""

    input_rules: int = 0
    output_rules: int = 0
    adorned_predicates: int = 0
    magic_rules: int = 0
    total_predicates: frozenset[str] = frozenset()


@dataclass(frozen=True)
class MagicRewrite:
    """The rewritten program plus the bookkeeping to read answers back."""

    program: Program
    query: Atom  # the normalized original query atom
    adornment: str
    answer_predicate: str  # adorned name holding the query's answers
    stats: MagicStats = field(compare=False, default_factory=MagicStats)


def normalize_query(program: Program, query: "Atom | str") -> Atom:
    """Turn a query spec into an atom: constants bound, variables free.

    A bare predicate name means "all arguments free"; the arity is read
    off the program's rule heads.
    """
    if isinstance(query, Atom):
        for rule in program.rules:
            if rule.head.predicate == query.predicate:
                if rule.head.arity != query.arity:
                    raise ValueError(
                        f"query {query} has arity {query.arity} but "
                        f"{query.predicate!r} is defined with arity "
                        f"{rule.head.arity}"
                    )
                break
        return query
    for rule in program.rules:
        if rule.head.predicate == query:
            arity = rule.head.arity
            return Atom(
                query, tuple(Variable(f"_Q{i}") for i in range(arity))
            )
    raise ValueError(
        f"query predicate {query!r} is not defined by any rule head"
    )


def _adornment_of(atom: Atom, bound: set[Variable]) -> str:
    return "".join(
        "b" if isinstance(arg, Constant) or arg in bound else "f"
        for arg in atom.args
    )


def _bound_args(atom: Atom, adornment: str) -> tuple:
    return tuple(
        arg for arg, c in zip(atom.args, adornment) if c == "b"
    )


def _total_predicates(program: Program, idb: frozenset[str]) -> frozenset[str]:
    """Predicates that must keep their full extent: anything occurring
    in a negated intensional literal, closed under dependency."""
    depends: dict[str, set[str]] = {p: set() for p in idb}
    seeds: set[str] = set()
    for rule in program.rules:
        for literal in rule.body:
            p = literal.atom.predicate
            if p not in idb:
                continue
            depends[rule.head.predicate].add(p)
            if not literal.positive:
                seeds.add(p)
    closed: set[str] = set()
    stack = list(seeds)
    while stack:
        p = stack.pop()
        if p in closed:
            continue
        closed.add(p)
        stack.extend(depends[p] - closed)
    return frozenset(closed)


def demanded_predicates(
    program: Program,
    query: "Atom | str",
    registry: BuiltinRegistry | None = None,
) -> frozenset[str]:
    """The intensional predicates whose extent the query can observe.

    Runs the adorned demand traversal of :func:`magic_rewrite` and
    reports which *base* predicates it touched (rewritten occurrences
    plus the unrewritten totals cone).  A rule whose head predicate is
    outside this set can never contribute to the query's answers, so
    demand-pruned grounding
    (:func:`repro.datalog.grounding.ground_program_streamed`) skips it
    without instantiating a single guard binding -- magic-style
    relevance applied at grounding time rather than by rewriting the
    program.

    A query predicate that no rule defines demands nothing: the result
    is empty (the query's extent is empty whatever the database says).
    """
    if isinstance(query, str) and not any(
        rule.head.predicate == query for rule in program.rules
    ):
        return frozenset()
    rewrite = magic_rewrite(program, query, registry)
    demanded = {
        adorned_base(rule.head.predicate)
        for rule in rewrite.program.rules
        if not is_magic_predicate(rule.head.predicate)
    }
    return frozenset(demanded)


def magic_rewrite(
    program: Program,
    query: "Atom | str",
    registry: BuiltinRegistry | None = None,
    cost=None,
) -> MagicRewrite:
    """Rewrite ``program`` so bottom-up evaluation answers only ``query``.

    The returned program derives, for the query's adornment ``a``, the
    predicate ``<q>@a`` whose facts are exactly the facts of ``<q>``
    relevant to the demanded bindings (a superset of the facts matching
    the query's constants, and a subset of the full extent of ``<q>``).

    ``cost`` (a :class:`~repro.datalog.profile.CostModel`) feeds the
    sideways-information-passing order: demand then flows along the
    replanned join order, the same one the rewritten program will run.
    """
    registry = registry if registry is not None else standard_registry()
    query_atom = normalize_query(program, query)
    idb = program.intensional_predicates()
    if query_atom.predicate not in idb:
        raise ValueError(
            f"query predicate {query_atom.predicate!r} is not intensional"
        )
    totals = _total_predicates(program, idb)
    rules_for: dict[str, list[Rule]] = {}
    for rule in program.rules:
        rules_for.setdefault(rule.head.predicate, []).append(rule)

    stats = MagicStats(input_rules=len(program.rules))
    query_adornment = _adornment_of(query_atom, set())
    out_rules: list[Rule] = []

    if query_atom.predicate in totals:
        # The query itself sits under negation; demand cannot prune it.
        # Keep the totals cone unrewritten and alias the answers.
        needed_totals = {query_atom.predicate}
    else:
        needed_totals: set[str] = set()
        seen: set[tuple[str, str]] = set()
        queue: list[tuple[str, str]] = [
            (query_atom.predicate, query_adornment)
        ]
        seen.add(queue[0])
        while queue:
            pred, adornment = queue.pop()
            stats.adorned_predicates += 1
            for rule in rules_for.get(pred, ()):
                head = rule.head
                head_bound = {
                    arg
                    for arg, c in zip(head.args, adornment)
                    if c == "b" and isinstance(arg, Variable)
                }
                plan = plan_rule(
                    rule, idb, registry, initial_bound=head_bound, cost=cost
                )
                magic_head = Literal(
                    Atom(
                        magic_name(pred, adornment),
                        _bound_args(head, adornment),
                    )
                )
                bound: set[Variable] = set(head_bound)
                prefix: list[Literal] = [magic_head]
                new_body: list[Literal] = [magic_head]
                for step in plan:
                    literal = step.literal
                    atom = literal.atom
                    demanded = (
                        literal.positive
                        and atom.predicate in idb
                        and atom.predicate not in totals
                    )
                    if demanded:
                        sub_adornment = _adornment_of(atom, bound)
                        out_rules.append(
                            Rule(
                                Atom(
                                    magic_name(
                                        atom.predicate, sub_adornment
                                    ),
                                    _bound_args(atom, sub_adornment),
                                ),
                                tuple(prefix),
                            )
                        )
                        stats.magic_rules += 1
                        key = (atom.predicate, sub_adornment)
                        if key not in seen:
                            seen.add(key)
                            queue.append(key)
                        literal = Literal(
                            Atom(
                                adorned_name(
                                    atom.predicate, sub_adornment
                                ),
                                atom.args,
                            )
                        )
                    elif atom.predicate in totals:
                        needed_totals.add(atom.predicate)
                    new_body.append(literal)
                    prefix.append(literal)
                    if literal.positive:
                        bound.update(literal.atom.variables())
                out_rules.append(
                    Rule(
                        Atom(adorned_name(pred, adornment), head.args),
                        tuple(new_body),
                    )
                )
        # seed the query's own demand with its constant arguments
        out_rules.append(
            Rule(
                Atom(
                    magic_name(query_atom.predicate, query_adornment),
                    _bound_args(query_atom, query_adornment),
                )
            )
        )

    # the totals cone keeps its original rules (closed under dependency)
    included_totals: set[str] = set()
    stack = sorted(needed_totals)
    while stack:
        p = stack.pop()
        if p in included_totals:
            continue
        included_totals.add(p)
        for rule in rules_for.get(p, ()):
            out_rules.append(rule)
            for literal in rule.body:
                dep = literal.atom.predicate
                if dep in idb and dep not in included_totals:
                    stack.append(dep)
    stats.total_predicates = frozenset(included_totals)

    if query_atom.predicate in totals:
        # alias the unrewritten extent under the adorned answer name
        out_rules.append(
            Rule(
                Atom(
                    adorned_name(query_atom.predicate, query_adornment),
                    query_atom.args,
                ),
                (Literal(query_atom),),
            )
        )

    stats.output_rules = len(out_rules)
    return MagicRewrite(
        program=Program(out_rules, builtin_names=program.builtin_names),
        query=query_atom,
        adornment=query_adornment,
        answer_predicate=adorned_name(
            query_atom.predicate, query_adornment
        ),
        stats=stats,
    )
