"""3-Colorability over bounded-treewidth graphs (Section 5.1, Figure 5).

Three interchangeable solvers, cross-validated against each other in the
test-suite:

* :class:`ThreeColoringDatalog` -- the Figure 5 program, verbatim up to
  engine syntax, executed by the semi-naive datalog engine.  ``solve(s,
  R, G, B)`` is the succinct non-monadic predicate whose arguments are
  fixed-size subsets of the bag (Theorem 5.1 explains why this is a
  succinct monadic program); ``partition`` and ``allowed`` are the
  helper predicates the paper precomputes alongside the decomposition.
* :func:`three_coloring_direct` -- the same dynamic program hand-coded
  in Python ("one can of course go one step further and implement our
  algorithms directly in Java, C++, etc.", Section 1), including witness
  extraction.
* :func:`three_coloring_bruteforce` -- exhaustive search, the ground
  truth for small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Hashable, Iterable, Mapping

from ..datalog.ast import Program, Rule, atom, pos, rule, var
from ..datalog.builtins import standard_registry
from ..datalog.backends import solve as backend_solve
from ..datalog.evaluate import Database, SemiNaiveEvaluator
from ..datalog.magic import adorned_base, is_magic_predicate
from ..structures.graphs import Graph, graph_to_structure
from ..structures.structure import Fact, Structure
from ..treewidth.decomposition import TreeDecomposition
from ..treewidth.encode import TDNode, encode_nice
from ..treewidth.heuristics import decompose_graph
from ..treewidth.nice import NiceNodeKind, NiceTreeDecomposition, make_nice
from .._util import powerset

Vertex = Hashable
Coloring = dict[Vertex, str]


# ----------------------------------------------------------------------
# Shared preparation
# ----------------------------------------------------------------------


def prepare_decomposition(
    graph: Graph, td: TreeDecomposition | None = None
) -> NiceTreeDecomposition:
    """Heuristic decomposition + Section 5 normal form."""
    if td is None:
        td = decompose_graph(graph)
    nice = make_nice(td)
    nice.validate(graph_to_structure(graph))
    return nice


def encode_for_three_coloring(
    graph: Graph, nice: NiceTreeDecomposition
) -> Structure:
    """``A_td`` plus the precomputed ``allowed`` facts and copy-node tags.

    ``allowed(s, X)`` holds iff ``X`` is a subset of the bag of ``s``
    containing no two adjacent vertices; the paper computes these "as
    part of the computation of the tree decomposition", which "fits into
    the linear time bound" for fixed w.
    """
    structure = graph_to_structure(graph)
    encoded = encode_nice(structure, nice)
    extra_domain: set = set()
    allowed: set[tuple] = set()
    copynode: set[tuple] = set()
    for node in nice.tree.nodes():
        bag = nice.bag(node)
        for subset in powerset(sorted(bag, key=repr)):
            chosen = frozenset(subset)
            if not _has_internal_edge(graph, chosen):
                allowed.add((TDNode(node), chosen))
                extra_domain.add(chosen)
        if nice.node_kind(node) is NiceNodeKind.COPY:
            copynode.add((TDNode(node),))
    signature = encoded.signature.extended({"allowed": 2, "copynode": 1})
    relations = {name: set(encoded.relation(name)) for name in encoded.signature}
    relations["allowed"] = allowed
    relations["copynode"] = copynode
    return Structure(
        signature, set(encoded.domain) | extra_domain, relations
    )


def _has_internal_edge(graph: Graph, vertices: frozenset) -> bool:
    for v in vertices:
        for u in graph.neighbors(v):
            if u in vertices:
                return True
    return False


# ----------------------------------------------------------------------
# The Figure 5 program
# ----------------------------------------------------------------------


def three_coloring_program() -> Program:
    """The datalog program of Figure 5.

    Data-independent: the same program runs on every encoded instance.
    ``⊎`` is the ``add`` built-in, ``partition`` is ``partition3``; the
    ``copy`` rule extends the paper's set to the equal-bag copy nodes
    that the Section 5.3 transformation introduces.
    """
    S, S1, S2 = var("S"), var("S1"), var("S2")
    X, XV, V = var("X"), var("XV"), var("V")
    R, G, B = var("R"), var("G"), var("B")
    R2, G2, B2 = var("R2"), var("G2"), var("B2")

    rules = [
        # leaf node
        rule(
            atom("solve", S, R, G, B),
            pos("leaf", S),
            pos("bag", S, X),
            pos("partition3", X, R, G, B),
            pos("allowed", S, R),
            pos("allowed", S, G),
            pos("allowed", S, B),
        ),
    ]
    # element introduction node: the new vertex joins R, G or B.
    for color, grown in (("R", R2), ("G", G2), ("B", B2)):
        old = {"R": R, "G": G, "B": B}
        head_args = [S] + [grown if c == color else old[c] for c in "RGB"]
        rules.append(
            rule(
                atom("solve", *head_args),
                pos("bag", S, XV),
                pos("child1", S1, S),
                pos("bag", S1, X),
                pos("add", X, V, XV),
                pos("solve", S1, R, G, B),
                pos("add", old[color], V, grown),
                pos("allowed", S, grown),
            )
        )
    # element removal node: the removed vertex was in R, G or B.
    for color, grown in (("R", R2), ("G", G2), ("B", B2)):
        old = {"R": R, "G": G, "B": B}
        body_args = [S1] + [grown if c == color else old[c] for c in "RGB"]
        rules.append(
            rule(
                atom("solve", S, R, G, B),
                pos("bag", S, X),
                pos("child1", S1, S),
                pos("bag", S1, XV),
                pos("add", X, V, XV),
                pos("solve", *body_args),
                pos("add", old[color], V, grown),
            )
        )
    rules += [
        # branch node
        rule(
            atom("solve", S, R, G, B),
            pos("bag", S, X),
            pos("child1", S1, S),
            pos("child2", S2, S),
            pos("bag", S1, X),
            pos("bag", S2, X),
            pos("solve", S1, R, G, B),
            pos("solve", S2, R, G, B),
        ),
        # copy node (equal-bag unary node; identity transition)
        rule(
            atom("solve", S, R, G, B),
            pos("copynode", S),
            pos("child1", S1, S),
            pos("solve", S1, R, G, B),
        ),
        # result (at the root node)
        rule(
            atom("success"),
            pos("root", S),
            pos("solve", S, R, G, B),
        ),
    ]
    return Program(rules, builtin_names=("add", "partition3"))


@dataclass
class ThreeColoringRun:
    colorable: bool
    solve_fact_count: int
    database: Database


class ThreeColoringDatalog:
    """Figure 5, executed by a pluggable datalog backend.

    ``backend`` names any evaluation backend registered in
    :mod:`repro.datalog.backends`; the magic-set backend is evaluated
    goal-directed on the 0-ary ``success`` predicate, in which case
    ``solve`` facts exist only in adorned form (counted all the same).
    """

    def __init__(self, backend: str = "semi-naive") -> None:
        self.program = three_coloring_program()
        self.backend_name = backend

    def run(
        self, graph: Graph, td: TreeDecomposition | None = None
    ) -> ThreeColoringRun:
        if graph.vertex_count() == 0:
            return ThreeColoringRun(True, 0, Database())
        nice = prepare_decomposition(graph, td)
        encoded = encode_for_three_coloring(graph, nice)
        # registry=None resolves to the shared standard registry so the
        # compiled-program cache hits across runs and instances
        db = backend_solve(
            self.program,
            encoded,
            backend=self.backend_name,
            query="success",
        )
        solve_facts = sum(
            len(db.relation(p))
            for p in db.predicates()
            if not is_magic_predicate(p) and adorned_base(p) == "solve"
        )
        return ThreeColoringRun(
            colorable=db.contains("success", ()),
            solve_fact_count=solve_facts,
            database=db,
        )

    def decide(self, graph: Graph, td: TreeDecomposition | None = None) -> bool:
        return self.run(graph, td).colorable


# ----------------------------------------------------------------------
# Direct dynamic program (the paper's "C++ implementation" analogue)
# ----------------------------------------------------------------------

State = tuple[frozenset, frozenset, frozenset]  # (R, G, B) projections


def three_coloring_direct(
    graph: Graph,
    td: TreeDecomposition | None = None,
    want_witness: bool = False,
) -> tuple[bool, Coloring | None]:
    """Bottom-up DP computing exactly the ``solve`` facts of Property A.

    Returns ``(colorable, witness)`` where the witness is a full
    3-coloring when requested and one exists.
    """
    if graph.vertex_count() == 0:
        return True, {} if want_witness else None
    nice = prepare_decomposition(graph, td)
    tree = nice.tree

    states: dict[int, set[State]] = {}
    # provenance for witness extraction: (node, state) -> choice record
    provenance: dict[tuple[int, State], tuple] = {}

    for node in tree.postorder():
        kind = nice.node_kind(node)
        bag = nice.bag(node)
        here: set[State] = set()
        if kind is NiceNodeKind.LEAF:
            for state in _leaf_states(graph, bag):
                here.add(state)
                provenance[(node, state)] = ("leaf",)
        elif kind is NiceNodeKind.INTRODUCTION:
            (child,) = tree.children(node)
            v = nice.introduced_element(node)
            for state in states[child]:
                for i in range(3):
                    grown = tuple(
                        part | {v} if j == i else part
                        for j, part in enumerate(state)
                    )
                    if _conflicts(graph, v, grown[i]):
                        continue
                    grown = (grown[0], grown[1], grown[2])
                    here.add(grown)
                    provenance.setdefault(
                        (node, grown), ("intro", state, v, "RGB"[i])
                    )
        elif kind is NiceNodeKind.REMOVAL:
            (child,) = tree.children(node)
            v = nice.removed_element(node)
            for state in states[child]:
                shrunk = tuple(part - {v} for part in state)
                shrunk = (shrunk[0], shrunk[1], shrunk[2])
                here.add(shrunk)
                provenance.setdefault((node, shrunk), ("forget", state))
        elif kind is NiceNodeKind.COPY:
            (child,) = tree.children(node)
            for state in states[child]:
                here.add(state)
                provenance.setdefault((node, state), ("copy", state))
        else:  # branch
            c1, c2 = tree.children(node)
            for state in states[c1] & states[c2]:
                here.add(state)
                provenance.setdefault((node, state), ("branch", state, state))
        states[node] = here

    root_states = states[tree.root]
    if not root_states:
        return False, None
    if not want_witness:
        return True, None
    coloring: Coloring = {}
    _reconstruct(
        nice, states, provenance, tree.root, next(iter(root_states)), coloring
    )
    return True, coloring


def _leaf_states(graph: Graph, bag: frozenset):
    items = sorted(bag, key=repr)
    for assignment in product(range(3), repeat=len(items)):
        parts: list[set] = [set(), set(), set()]
        for v, color in zip(items, assignment):
            parts[color].add(v)
        if any(_has_internal_edge(graph, frozenset(p)) for p in parts):
            continue
        yield (frozenset(parts[0]), frozenset(parts[1]), frozenset(parts[2]))


def _conflicts(graph: Graph, v: Vertex, part: frozenset) -> bool:
    return any(u in part for u in graph.neighbors(v)) or v in graph.neighbors(v)


def _reconstruct(
    nice: NiceTreeDecomposition,
    states: dict,
    provenance: dict,
    node: int,
    state: State,
    coloring: Coloring,
) -> None:
    for part, color in zip(state, "RGB"):
        for v in part:
            coloring[v] = color
    record = provenance[(node, state)]
    kind = record[0]
    children = nice.tree.children(node)
    if kind == "leaf":
        return
    if kind in ("forget", "copy"):
        _reconstruct(nice, states, provenance, children[0], record[1], coloring)
    elif kind == "intro":
        _reconstruct(nice, states, provenance, children[0], record[1], coloring)
    elif kind == "branch":
        _reconstruct(nice, states, provenance, children[0], record[1], coloring)
        _reconstruct(nice, states, provenance, children[1], record[2], coloring)


# ----------------------------------------------------------------------
# Brute force baseline
# ----------------------------------------------------------------------


def three_coloring_bruteforce(graph: Graph) -> bool:
    """Try all 3^n colorings; ground truth for small graphs."""
    vertices = sorted(graph.vertices, key=repr)
    for assignment in product(range(3), repeat=len(vertices)):
        color = dict(zip(vertices, assignment))
        if all(
            color[u] != color[v] for u, v in graph.edges() if u != v
        ) and not any(graph.has_edge(v, v) for v in vertices):
            return True
    return not vertices


def is_valid_coloring(graph: Graph, coloring: Mapping[Vertex, str]) -> bool:
    if set(coloring) != set(graph.vertices):
        return False
    return all(
        coloring[u] != coloring[v] for u, v in graph.edges() if u != v
    ) and not any(graph.has_edge(v, v) for v in graph.vertices)
