"""k-Colorability: the natural generalization of Figure 5.

The paper presents 3-Colorability; the same bottom-up scheme works for
any fixed number of colors (k-Colorability is MSO-expressible for every
fixed k, so Courcelle applies verbatim).  Exposing the generalized
solver demonstrates the "flexibility" advantage the introduction claims
for the datalog approach -- the DP is parameterized where an FTA would
have to be reconstructed -- and gives the library a chromatic-number
routine for bounded-treewidth graphs.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Mapping

from ..structures.graphs import Graph
from ..treewidth.decomposition import TreeDecomposition
from ..treewidth.nice import NiceNodeKind
from .three_coloring import prepare_decomposition

Vertex = Hashable
Coloring = dict[Vertex, int]


def k_coloring_direct(
    graph: Graph,
    k: int,
    td: TreeDecomposition | None = None,
    want_witness: bool = False,
) -> tuple[bool, Coloring | None]:
    """Is ``graph`` properly k-colorable?  Figure 5's DP with k classes.

    States are k-tuples of bag projections of the color classes; the
    complexity is O(k^{w+1} * |T|) for width w.
    """
    if k < 1:
        raise ValueError("need at least one color")
    if graph.vertex_count() == 0:
        return True, ({} if want_witness else None)
    if any(graph.has_edge(v, v) for v in graph.vertices):
        return False, None
    nice = prepare_decomposition(graph, td)
    tree = nice.tree

    states: dict[int, set[tuple]] = {}
    provenance: dict[tuple[int, tuple], tuple] = {}

    def conflicts(v, part):
        return any(u in part for u in graph.neighbors(v))

    for node in tree.postorder():
        kind = nice.node_kind(node)
        bag = nice.bag(node)
        here: set[tuple] = set()
        if kind is NiceNodeKind.LEAF:
            items = sorted(bag, key=repr)
            for assignment in product(range(k), repeat=len(items)):
                parts = [set() for _ in range(k)]
                for v, color in zip(items, assignment):
                    if conflicts(v, parts[color]):
                        break
                    parts[color].add(v)
                else:
                    state = tuple(frozenset(p) for p in parts)
                    here.add(state)
                    provenance.setdefault((node, state), ("leaf",))
        elif kind is NiceNodeKind.INTRODUCTION:
            (child,) = tree.children(node)
            v = nice.introduced_element(node)
            for state in states[child]:
                for i in range(k):
                    if conflicts(v, state[i]):
                        continue
                    grown = tuple(
                        part | {v} if j == i else part
                        for j, part in enumerate(state)
                    )
                    here.add(grown)
                    provenance.setdefault((node, grown), ("intro", state))
        elif kind is NiceNodeKind.REMOVAL:
            (child,) = tree.children(node)
            v = nice.removed_element(node)
            for state in states[child]:
                shrunk = tuple(part - {v} for part in state)
                here.add(shrunk)
                provenance.setdefault((node, shrunk), ("forget", state))
        elif kind is NiceNodeKind.COPY:
            (child,) = tree.children(node)
            for state in states[child]:
                here.add(state)
                provenance.setdefault((node, state), ("copy", state))
        else:
            c1, c2 = tree.children(node)
            for state in states[c1] & states[c2]:
                here.add(state)
                provenance.setdefault((node, state), ("branch", state, state))
        states[node] = here

    root_states = states[tree.root]
    if not root_states:
        return False, None
    if not want_witness:
        return True, None

    coloring: Coloring = {}

    def reconstruct(node, state):
        for color, part in enumerate(state):
            for v in part:
                coloring[v] = color
        record = provenance[(node, state)]
        children = tree.children(node)
        if record[0] == "leaf":
            return
        if record[0] == "branch":
            reconstruct(children[0], record[1])
            reconstruct(children[1], record[2])
        else:
            reconstruct(children[0], record[1])

    reconstruct(tree.root, next(iter(root_states)))
    return True, coloring


def chromatic_number(graph: Graph, td: TreeDecomposition | None = None) -> int:
    """The chromatic number of a bounded-treewidth graph.

    Tries k = 1, 2, ... -- each check is linear in the data for fixed
    width, and chi(G) <= tw(G) + 1 bounds the search.
    """
    if graph.vertex_count() == 0:
        return 0
    if any(graph.has_edge(v, v) for v in graph.vertices):
        raise ValueError("chromatic number undefined with self-loops")
    k = 1
    while True:
        colorable, _ = k_coloring_direct(graph, k, td)
        if colorable:
            return k
        k += 1


def k_coloring_bruteforce(graph: Graph, k: int) -> bool:
    """Exhaustive ground truth for small graphs."""
    vertices = sorted(graph.vertices, key=repr)
    if any(graph.has_edge(v, v) for v in vertices):
        return False
    for assignment in product(range(k), repeat=len(vertices)):
        color = dict(zip(vertices, assignment))
        if all(color[u] != color[v] for u, v in graph.edges() if u != v):
            return True
    return not vertices


def is_valid_k_coloring(
    graph: Graph, coloring: Mapping[Vertex, int], k: int
) -> bool:
    if set(coloring) != set(graph.vertices):
        return False
    if any(not 0 <= c < k for c in coloring.values()):
        return False
    return all(
        coloring[u] != coloring[v] for u, v in graph.edges() if u != v
    )
