"""PRIMALITY over bounded-treewidth schemas (Sections 5.2 and 5.3).

Is attribute ``a`` part of some key of the schema ``(R, F)``?  The
algorithm searches for the Example 2.6 witness: a closed set Y with
``a ∉ Y`` and ``(Y ∪ {a})+ = R``, maintained along the decomposition by
the ``solve(s, Y, FY, Co, ΔC, FC)`` predicate of Figure 6 (Property B):

* ``Y``  -- projection of the closed set onto the bag attributes;
* ``Co`` -- projection of its complement, *ordered* by the derivation
  sequence of R from Y ∪ {a};
* ``FY`` -- bag FDs already excused from threatening Y's closedness;
* ``FC`` -- bag FDs used by the derivation sequence;
* ``ΔC`` -- bag attributes whose derivation has been verified.

Implementations (cross-validated in the test-suite):

* :class:`PrimalityDatalog` / :func:`primality_program` -- Figure 6 as
  an engine-executed datalog program (decision);
* :func:`enumeration_program` -- the Section 5.3 Monadic-Primality
  program with the top-down ``solvedown`` predicate (all primes,
  linear time);
* :func:`primality_direct` / :func:`prime_attributes_direct` -- the
  same dynamic programs hand-coded in Python;
* :func:`prime_attributes_rerooting` -- the quadratic strawman that
  Section 5.3 opens with (one decision run per attribute, re-rooted);
* ground truth: :meth:`RelationalSchema.is_prime_bruteforce`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Iterable, Iterator

from ..datalog.ast import Constant, Program, atom, pos, rule, var
from ..datalog.builtins import (
    Builtin,
    BuiltinRegistry,
    UNBOUND,
    make_check,
    make_function,
    standard_registry,
)
from ..datalog.backends import ProgramCache, get_backend
from ..datalog.evaluate import Database, SemiNaiveEvaluator
from ..structures.schema import Attribute, RelationalSchema
from ..structures.structure import Structure
from ..treewidth.decomposition import TreeDecomposition
from ..treewidth.encode import TDNode, encode_nice
from ..treewidth.heuristics import decompose_structure
from ..treewidth.nice import (
    NiceNodeKind,
    NiceTreeDecomposition,
    ensure_elements_in_leaves,
    make_nice,
    reroot_to_contain,
    surround_branches,
)
from .._util import powerset

#: solve-state: (Y, FY, Co, ΔC, FC) with Co an ordered tuple.
State = tuple[frozenset, frozenset, tuple, frozenset, frozenset]


# ----------------------------------------------------------------------
# Decomposition preparation (Section 5.2 preliminaries)
# ----------------------------------------------------------------------


def _enrich_with_rhs(
    td: TreeDecomposition, schema: RelationalSchema
) -> TreeDecomposition:
    """Add rhs(f) to every bag containing f.

    "We require that, whenever an FD f is contained in a bag, then the
    attribute rhs(f) is as well.  In the worst-case, this may double the
    width."  Connectedness survives: rhs(f)'s subtree is unioned with
    f's subtree, and the two already intersect (they share a bag by the
    coverage of the ``rh`` tuple).
    """
    fd_names = {f.name for f in schema.fds}
    bags = {
        node: bag
        | {schema.fd(e).rhs for e in bag if e in fd_names}
        for node, bag in td.bags.items()
    }
    return TreeDecomposition(td.tree.copy(), bags)


def _schema_sort_keys(schema: RelationalSchema):
    """Interpolation orderings preserving the rhs-in-bag invariant:
    remove FDs before attributes, introduce attributes before FDs."""
    fd_names = {f.name for f in schema.fds}

    def removal_key(element):
        return 0 if element in fd_names else 1

    def introduction_key(element):
        return 0 if element not in fd_names else 1

    return removal_key, introduction_key


def prepare_decision_decomposition(
    schema: RelationalSchema,
    attribute: Attribute,
    td: TreeDecomposition | None = None,
) -> NiceTreeDecomposition:
    """Nice decomposition with ``attribute`` in the root bag."""
    structure = schema.to_structure()
    if td is None:
        td = decompose_structure(structure)
    td = _enrich_with_rhs(td, schema)
    td = reroot_to_contain(td, attribute)
    removal_key, introduction_key = _schema_sort_keys(schema)
    nice = make_nice(td, removal_key, introduction_key)
    nice.validate(structure)
    _check_rhs_invariant(nice, schema)
    return nice


def prepare_enumeration_decomposition(
    schema: RelationalSchema,
    td: TreeDecomposition | None = None,
) -> NiceTreeDecomposition:
    """Nice decomposition for the enumeration problem (Section 5.3):
    every attribute in some leaf bag, branch nodes surrounded by
    equal-bag neighbours, root not a branch node."""
    structure = schema.to_structure()
    if td is None:
        td = decompose_structure(structure)
    td = _enrich_with_rhs(td, schema)
    td = ensure_elements_in_leaves(td, schema.attributes)
    removal_key, introduction_key = _schema_sort_keys(schema)
    nice = surround_branches(make_nice(td, removal_key, introduction_key))
    nice.validate(structure)
    _check_rhs_invariant(nice, schema)
    return nice


def _check_rhs_invariant(
    nice: NiceTreeDecomposition, schema: RelationalSchema
) -> None:
    fd_names = {f.name for f in schema.fds}
    for node in nice.tree.nodes():
        bag = nice.bag(node)
        for element in bag:
            if element in fd_names and schema.fd(element).rhs not in bag:
                raise AssertionError(
                    f"bag of node {node} contains {element} without its "
                    "right-hand side"
                )


def encode_for_primality(
    schema: RelationalSchema, nice: NiceTreeDecomposition
) -> Structure:
    """``A_td`` with bags split as ``bag(s, At, Fd)`` plus copy-node tags."""
    structure = schema.to_structure()
    fd_names = {f.name for f in schema.fds}

    def payload(bag: frozenset) -> tuple:
        at = frozenset(e for e in bag if e not in fd_names)
        fd = frozenset(e for e in bag if e in fd_names)
        return (at, fd)

    encoded = encode_nice(structure, nice, bag_payload=payload)
    copynode = {
        (TDNode(node),)
        for node in nice.tree.nodes()
        if nice.node_kind(node) is NiceNodeKind.COPY
    }
    signature = encoded.signature.extended({"copynode": 1})
    relations = {name: set(encoded.relation(name)) for name in encoded.signature}
    relations["copynode"] = copynode
    return Structure(signature, encoded.domain, relations)


# ----------------------------------------------------------------------
# The transition algebra shared by all implementations
# ----------------------------------------------------------------------


class PrimalityAlgebra:
    """The Figure 6 / Property B transitions as plain functions.

    Both the bottom-up ``solve`` pass and the top-down ``solvedown``
    pass (Section 5.3) are built from these: a downward step through an
    introduction node is the removal transition and vice versa.
    """

    def __init__(self, schema: RelationalSchema):
        self.schema = schema
        self.lhs = {f.name: f.lhs for f in schema.fds}
        self.rhs = {f.name: f.rhs for f in schema.fds}

    # -- helper predicates (Section 5.2) --------------------------------

    def outside(self, y: frozenset, at: frozenset, fds: Iterable) -> frozenset:
        """{f in fds : rhs(f) not in Y and lhs(f) ∩ At not subseteq Y}."""
        return frozenset(
            f
            for f in fds
            if self.rhs[f] not in y and (self.lhs[f] & at) - y
        )

    def consistent(self, fc: Iterable, co: tuple) -> bool:
        """FDs in FC only derive greater attributes from smaller ones."""
        position = {b: i for i, b in enumerate(co)}
        for f in fc:
            b = self.rhs[f]
            if b not in position:
                return False
            if any(
                position.get(x, -1) >= position[b]
                for x in self.lhs[f]
                if x in position
            ):
                return False
        return True

    def unique(self, dc1: frozenset, dc2: frozenset, fc: Iterable) -> bool:
        """No attribute derived by two different FDs across a branch."""
        return dc1 & dc2 == frozenset(self.rhs[f] for f in fc)

    def rhs_set(self, fc: Iterable) -> frozenset:
        return frozenset(self.rhs[f] for f in fc)

    def outside_all(self, y: frozenset, fds: Iterable) -> frozenset:
        """{f in fds : rhs(f) not in Y} -- the root/leaf acceptance check."""
        return frozenset(f for f in fds if self.rhs[f] not in y)

    # -- node transitions -------------------------------------------------

    def leaf_states(self, at: frozenset, fds: frozenset) -> Iterator[State]:
        """The leaf-rule guesses: a partition of the bag attributes with
        an ordering on the Co part and a consistent used-FD subset."""
        attrs = sorted(at, key=repr)
        for y_tuple in powerset(attrs):
            y = frozenset(y_tuple)
            co_set = [b for b in attrs if b not in y]
            fy = self.outside(y, at, fds)
            for co in permutations(co_set):
                for fc_tuple in powerset(sorted(fds, key=repr)):
                    fc = frozenset(fc_tuple)
                    if not self.consistent(fc, co):
                        continue
                    dc = self.rhs_set(fc)
                    yield (y, fy, co, dc, fc)

    def attr_intro(
        self, state: State, b: Attribute, new_at: frozenset, fds: frozenset
    ) -> Iterator[State]:
        """Introduce attribute ``b``: it joins Y, or joins Co at any
        position consistent with FC."""
        y, fy, co, dc, fc = state
        yield (y | {b}, fy, co, dc, fc)
        for i in range(len(co) + 1):
            co2 = co[:i] + (b,) + co[i:]
            if not self.consistent(fc, co2):
                continue
            fy2 = fy | self.outside(y, new_at, fds)
            yield (y, fy2, co2, dc, fc)

    def attr_removal(self, state: State, b: Attribute) -> Iterator[State]:
        """Remove attribute ``b``: it leaves Y, or leaves Co provided its
        derivation was verified (b in ΔC)."""
        y, fy, co, dc, fc = state
        if b in y:
            yield (y - {b}, fy, co, dc, fc)
        elif b in dc:
            co2 = tuple(x for x in co if x != b)
            yield (y, fy, co2, dc - {b}, fc)

    def fd_intro(
        self, state: State, f: str, at: frozenset
    ) -> Iterator[State]:
        """Introduce FD ``f`` (rhs(f) is in the bag by the invariant)."""
        y, fy, co, dc, fc = state
        b = self.rhs[f]
        if b in y:
            yield (y, fy, co, dc, fc)
            return
        # rhs(f) in Co: guess whether f is used in the derivation
        excused = self.outside(y, at, [f])
        if b not in dc and self.consistent([f], co):
            yield (y, fy | excused, co, dc | {b}, fc | {f})
        yield (y, fy | excused, co, dc, fc)

    def fd_removal(self, state: State, f: str) -> Iterator[State]:
        """Remove FD ``f``: if rhs(f) escapes Y, f must have been excused
        (f in FY); a used f leaves FC."""
        y, fy, co, dc, fc = state
        b = self.rhs[f]
        if b in y:
            yield (y, fy, co, dc, fc)
            return
        if f not in fy:
            return  # would contradict closedness of Y
        fy2 = fy - {f}
        if f in fc:
            yield (y, fy2, co, dc, fc - {f})
        else:
            yield (y, fy2, co, dc, fc)

    def branch_combine(self, s1: State, s2: State) -> Iterator[State]:
        """Combine equal-bag sibling states (Y, Co, FC must agree;
        FY and ΔC are unioned under the uniqueness proviso)."""
        y1, fy1, co1, dc1, fc1 = s1
        y2, fy2, co2, dc2, fc2 = s2
        if y1 != y2 or co1 != co2 or fc1 != fc2:
            return
        if not self.unique(dc1, dc2, fc1):
            return
        yield (y1, fy1 | fy2, co1, dc1 | dc2, fc1)

    def accept(
        self, state: State, attribute: Attribute, at: frozenset, fds: frozenset
    ) -> bool:
        """The success/prime condition at a node whose scope is all of A:
        a in At, a not in Y, FY = {f : rhs(f) not in Y}, ΔC = Co \\ {a}."""
        y, fy, co, dc, fc = state
        if attribute not in at or attribute in y:
            return False
        if fy != self.outside_all(y, fds):
            return False
        return frozenset(co) - {attribute} == dc


# ----------------------------------------------------------------------
# Direct dynamic programs
# ----------------------------------------------------------------------


def _split_bag(schema: RelationalSchema, bag: frozenset):
    fd_names = {f.name for f in schema.fds}
    at = frozenset(e for e in bag if e not in fd_names)
    fds = frozenset(e for e in bag if e in fd_names)
    return at, fds


def _solve_states(
    schema: RelationalSchema, nice: NiceTreeDecomposition
) -> dict[int, set[State]]:
    """Bottom-up ``solve`` facts per node (Property B)."""
    algebra = PrimalityAlgebra(schema)
    tree = nice.tree
    states: dict[int, set[State]] = {}
    for node in tree.postorder():
        kind = nice.node_kind(node)
        at, fds = _split_bag(schema, nice.bag(node))
        here: set[State] = set()
        if kind is NiceNodeKind.LEAF:
            here.update(algebra.leaf_states(at, fds))
        elif kind is NiceNodeKind.INTRODUCTION:
            (child,) = tree.children(node)
            element = nice.introduced_element(node)
            if element in algebra.rhs:  # an FD
                for state in states[child]:
                    here.update(algebra.fd_intro(state, element, at))
            else:
                for state in states[child]:
                    here.update(algebra.attr_intro(state, element, at, fds))
        elif kind is NiceNodeKind.REMOVAL:
            (child,) = tree.children(node)
            element = nice.removed_element(node)
            if element in algebra.rhs:
                for state in states[child]:
                    here.update(algebra.fd_removal(state, element))
            else:
                for state in states[child]:
                    here.update(algebra.attr_removal(state, element))
        elif kind is NiceNodeKind.COPY:
            (child,) = tree.children(node)
            here.update(states[child])
        else:  # branch
            c1, c2 = tree.children(node)
            by_key: dict[tuple, list[State]] = {}
            for state in states[c1]:
                by_key.setdefault((state[0], state[2], state[4]), []).append(state)
            for s2 in states[c2]:
                for s1 in by_key.get((s2[0], s2[2], s2[4]), ()):
                    here.update(algebra.branch_combine(s1, s2))
        states[node] = here
    return states


def primality_direct(
    schema: RelationalSchema,
    attribute: Attribute,
    td: TreeDecomposition | None = None,
) -> bool:
    """The Figure 6 decision, hand-coded (Theorem 5.3)."""
    if attribute not in schema.attributes:
        raise ValueError(f"unknown attribute {attribute!r}")
    nice = prepare_decision_decomposition(schema, attribute, td)
    algebra = PrimalityAlgebra(schema)
    states = _solve_states(schema, nice)
    root = nice.tree.root
    at, fds = _split_bag(schema, nice.bag(root))
    return any(
        algebra.accept(state, attribute, at, fds) for state in states[root]
    )


def prime_attributes_direct(
    schema: RelationalSchema,
    td: TreeDecomposition | None = None,
) -> frozenset[Attribute]:
    """All prime attributes in one bottom-up + one top-down pass
    (Theorem 5.4, linear time)."""
    nice = prepare_enumeration_decomposition(schema, td)
    algebra = PrimalityAlgebra(schema)
    tree = nice.tree
    solve = _solve_states(schema, nice)

    down: dict[int, set[State]] = {}
    root = tree.root
    at, fds = _split_bag(schema, nice.bag(root))
    down[root] = set(algebra.leaf_states(at, fds))

    for node in tree.preorder():
        kind = nice.node_kind(node)
        children = tree.children(node)
        if not children:
            continue
        if kind is NiceNodeKind.BRANCH:
            c1, c2 = children
            for child, sibling in ((c1, c2), (c2, c1)):
                combined: set[State] = set()
                by_key: dict[tuple, list[State]] = {}
                for state in solve[sibling]:
                    by_key.setdefault(
                        (state[0], state[2], state[4]), []
                    ).append(state)
                for s_down in down[node]:
                    for s_sib in by_key.get((s_down[0], s_down[2], s_down[4]), ()):
                        combined.update(algebra.branch_combine(s_down, s_sib))
                down[child] = combined
            continue
        (child,) = children
        child_at, child_fds = _split_bag(schema, nice.bag(child))
        out: set[State] = set()
        if kind is NiceNodeKind.COPY:
            out = set(down[node])
        elif kind is NiceNodeKind.INTRODUCTION:
            # walking down, the introduced element is removed
            element = nice.introduced_element(node)
            if element in algebra.rhs:
                for state in down[node]:
                    out.update(algebra.fd_removal(state, element))
            else:
                for state in down[node]:
                    out.update(algebra.attr_removal(state, element))
        else:  # REMOVAL: walking down, the removed element is introduced
            element = nice.removed_element(node)
            if element in algebra.rhs:
                for state in down[node]:
                    out.update(algebra.fd_intro(state, element, child_at))
            else:
                for state in down[node]:
                    out.update(
                        algebra.attr_intro(state, element, child_at, child_fds)
                    )
        down[child] = out

    primes: set[Attribute] = set()
    for leaf in tree.leaves():
        at, fds = _split_bag(schema, nice.bag(leaf))
        candidates = at - primes
        if not candidates:
            continue
        for state in down[leaf]:
            for a in sorted(candidates, key=repr):
                if algebra.accept(state, a, at, fds):
                    primes.add(a)
    return frozenset(primes)


def prime_attributes_rerooting(
    schema: RelationalSchema,
    td: TreeDecomposition | None = None,
) -> frozenset[Attribute]:
    """The naive quadratic enumeration Section 5.3 opens with: run the
    decision algorithm once per attribute, re-rooting the decomposition
    each time.  Exists as the baseline of the enumeration benchmark."""
    structure = schema.to_structure()
    if td is None:
        td = decompose_structure(structure)
    return frozenset(
        a for a in schema.attributes if primality_direct(schema, a, td)
    )


# ----------------------------------------------------------------------
# Figure 6 as an executable datalog program
# ----------------------------------------------------------------------


class _SchemaBuiltin(Builtin):
    """A built-in closed over the schema's FD definitions."""

    def __init__(self, name, arity, patterns, solutions_fn):
        self.name = name
        self.arity = arity
        self.patterns = patterns
        self._solutions = solutions_fn

    def solutions(self, slots):
        return self._solutions(slots)


def primality_registry(schema: RelationalSchema) -> BuiltinRegistry:
    """The standard built-ins plus the Figure 6 helper predicates, which
    need access to the FDs ("an efficient implementation by the
    interpreter", Section 1; optimization (4) of Section 6)."""
    algebra = PrimalityAlgebra(schema)
    registry = standard_registry()

    def outside_solutions(slots):
        fy, y, at, fd = slots
        if UNBOUND in (y, at, fd):
            raise ValueError("outside/4 needs Y, At, Fd bound")
        yield (algebra.outside(y, at, fd), y, at, fd)

    registry.register(
        _SchemaBuiltin(
            "outside",
            4,
            frozenset({(False, True, True, True)}),
            outside_solutions,
        )
    )
    registry.register(
        make_check("consistent", 2, algebra.consistent)
    )
    registry.register(
        make_check("unique", 3, algebra.unique)
    )
    registry.register(
        make_function("rhs_set", 2, algebra.rhs_set)
    )
    registry.register(
        make_function("outside_all", 3, algebra.outside_all)
    )
    registry.register(make_function("singleton", 2, lambda f: frozenset([f])))
    registry.register(make_check("member_oset", 2, lambda b, co: b in co))
    registry.register(
        make_check(
            "oset_minus_is",
            3,
            lambda co, a, dc: frozenset(co) - {a} == dc,
        )
    )

    class Orderings(Builtin):
        name = "orderings"
        arity = 2
        patterns = frozenset({(True, False)})

        def solutions(self, slots):
            co_set, co = slots
            if co is not UNBOUND:
                if set(co) == set(co_set) and len(set(co)) == len(co):
                    yield (co_set, co)
                return
            for arrangement in permutations(sorted(co_set, key=repr)):
                yield (co_set, arrangement)

    registry.register(Orderings())
    return registry


def _solve_rules(solve: str = "solve") -> list:
    """The Figure 6 rules with head predicate ``solve`` (bottom-up)."""
    S, S1, S2 = var("S"), var("S1"), var("S2")
    At, AtB, Fd, FdF = var("At"), var("AtB"), var("Fd"), var("FdF")
    B, F, FS = var("B"), var("F"), var("FS")
    Y, YB = var("Y"), var("YB")
    FY, FY1, FY2, FYB = var("FY"), var("FY1"), var("FY2"), var("FYB")
    Co, Co2, CoSet = var("Co"), var("Co2"), var("CoSet")
    DC, DC1, DC2, DCB = var("DC"), var("DC1"), var("DC2"), var("DCB")
    FC, FC1, FC2, FCF = var("FC"), var("FC1"), var("FC2"), var("FCF")

    rules = [
        # leaf node
        rule(
            atom(solve, S, Y, FY, Co, DC, FC),
            pos("leaf", S),
            pos("bag", S, At, Fd),
            pos("partition2", At, Y, CoSet),
            pos("orderings", CoSet, Co),
            pos("outside", FY, Y, At, Fd),
            pos("subset", FC, Fd),
            pos("consistent", FC, Co),
            pos("rhs_set", FC, DC),
        ),
        # attribute introduction: b joins Y
        rule(
            atom(solve, S, YB, FY, Co, DC, FC),
            pos("bag", S, AtB, Fd),
            pos("child1", S1, S),
            pos("bag", S1, At, Fd),
            pos("add", At, B, AtB),
            pos("att", B),
            pos(solve, S1, Y, FY, Co, DC, FC),
            pos("add", Y, B, YB),
        ),
        # attribute introduction: b joins Co
        rule(
            atom(solve, S, Y, FY, Co2, DC, FC),
            pos("bag", S, AtB, Fd),
            pos("child1", S1, S),
            pos("bag", S1, At, Fd),
            pos("add", At, B, AtB),
            pos("att", B),
            pos(solve, S1, Y, FY1, Co, DC, FC),
            pos("oinsert", Co, B, Co2),
            pos("consistent", FC, Co2),
            pos("outside", FY2, Y, AtB, Fd),
            pos("union", FY1, FY2, FY),
        ),
        # FD introduction: rhs(f) in Y
        rule(
            atom(solve, S, Y, FY, Co, DC, FC),
            pos("bag", S, At, FdF),
            pos("child1", S1, S),
            pos("bag", S1, At, Fd),
            pos("add", Fd, F, FdF),
            pos("fd", F),
            pos("rh", B, F),
            pos(solve, S1, Y, FY, Co, DC, FC),
            pos("member", B, Y),
        ),
        # FD introduction: rhs(f) in Co, f used for the derivation
        rule(
            atom(solve, S, Y, FY, Co, DCB, FCF),
            pos("bag", S, At, FdF),
            pos("child1", S1, S),
            pos("bag", S1, At, Fd),
            pos("add", Fd, F, FdF),
            pos("fd", F),
            pos("rh", B, F),
            pos(solve, S1, Y, FY1, Co, DC, FC),
            pos("member_oset", B, Co),
            pos("add", DC, B, DCB),
            pos("add", FC, F, FCF),
            pos("singleton", F, FS),
            pos("consistent", FS, Co),
            pos("outside", FY2, Y, At, FS),
            pos("union", FY1, FY2, FY),
        ),
        # FD introduction: rhs(f) in Co, f not used
        rule(
            atom(solve, S, Y, FY, Co, DC, FC),
            pos("bag", S, At, FdF),
            pos("child1", S1, S),
            pos("bag", S1, At, Fd),
            pos("add", Fd, F, FdF),
            pos("fd", F),
            pos("rh", B, F),
            pos(solve, S1, Y, FY1, Co, DC, FC),
            pos("member_oset", B, Co),
            pos("singleton", F, FS),
            pos("outside", FY2, Y, At, FS),
            pos("union", FY1, FY2, FY),
        ),
        # attribute removal: b was in Y
        rule(
            atom(solve, S, Y, FY, Co, DC, FC),
            pos("bag", S, At, Fd),
            pos("child1", S1, S),
            pos("bag", S1, AtB, Fd),
            pos("add", At, B, AtB),
            pos("att", B),
            pos(solve, S1, YB, FY, Co, DC, FC),
            pos("add", Y, B, YB),
        ),
        # attribute removal: b was in Co (its derivation must be verified)
        rule(
            atom(solve, S, Y, FY, Co, DC, FC),
            pos("bag", S, At, Fd),
            pos("child1", S1, S),
            pos("bag", S1, AtB, Fd),
            pos("add", At, B, AtB),
            pos("att", B),
            pos(solve, S1, Y, FY, Co2, DCB, FC),
            pos("oinsert", Co, B, Co2),
            pos("add", DC, B, DCB),
        ),
        # FD removal: rhs(f) in Y
        rule(
            atom(solve, S, Y, FY, Co, DC, FC),
            pos("bag", S, At, Fd),
            pos("child1", S1, S),
            pos("bag", S1, At, FdF),
            pos("add", Fd, F, FdF),
            pos("fd", F),
            pos("rh", B, F),
            pos(solve, S1, Y, FY, Co, DC, FC),
            pos("member", B, Y),
        ),
        # FD removal: rhs(f) in Co, f was used
        rule(
            atom(solve, S, Y, FY, Co, DC, FC),
            pos("bag", S, At, Fd),
            pos("child1", S1, S),
            pos("bag", S1, At, FdF),
            pos("add", Fd, F, FdF),
            pos("fd", F),
            pos("rh", B, F),
            pos(solve, S1, Y, FYB, Co, DC, FCF),
            pos("member_oset", B, Co),
            pos("add", FY, F, FYB),
            pos("add", FC, F, FCF),
        ),
        # FD removal: rhs(f) in Co, f not used
        rule(
            atom(solve, S, Y, FY, Co, DC, FC),
            pos("bag", S, At, Fd),
            pos("child1", S1, S),
            pos("bag", S1, At, FdF),
            pos("add", Fd, F, FdF),
            pos("fd", F),
            pos("rh", B, F),
            pos(solve, S1, Y, FYB, Co, DC, FC),
            pos("member_oset", B, Co),
            pos("add", FY, F, FYB),
            pos("not_member", F, FC),
        ),
        # branch node
        rule(
            atom(solve, S, Y, FY, Co, DC, FC),
            pos("bag", S, At, Fd),
            pos("child1", S1, S),
            pos("child2", S2, S),
            pos("bag", S1, At, Fd),
            pos("bag", S2, At, Fd),
            pos(solve, S1, Y, FY1, Co, DC1, FC),
            pos(solve, S2, Y, FY2, Co, DC2, FC),
            pos("unique", DC1, DC2, FC),
            pos("union", FY1, FY2, FY),
            pos("union", DC1, DC2, DC),
        ),
        # copy node (Section 5.3 extension; identity transition)
        rule(
            atom(solve, S, Y, FY, Co, DC, FC),
            pos("copynode", S),
            pos("child1", S1, S),
            pos(solve, S1, Y, FY, Co, DC, FC),
        ),
    ]
    return rules


_BUILTIN_NAMES = (
    "add",
    "partition2",
    "orderings",
    "outside",
    "consistent",
    "rhs_set",
    "subset",
    "member",
    "member_oset",
    "not_member",
    "oinsert",
    "union",
    "singleton",
    "unique",
    "outside_all",
    "oset_minus_is",
    "eq",
)


def primality_program(attribute: Attribute) -> Program:
    """The Figure 6 decision program for the fixed attribute ``a``."""
    S = var("S")
    At, Fd = var("At"), var("Fd")
    Y, FY, Co, DC, FC, FYx = (
        var("Y"),
        var("FY"),
        var("Co"),
        var("DC"),
        var("FC"),
        var("FYx"),
    )
    a = Constant(attribute)
    rules = _solve_rules()
    rules.append(
        # result (at the root node)
        rule(
            atom("success"),
            pos("root", S),
            pos("bag", S, At, Fd),
            pos("member", a, At),
            pos("solve", S, Y, FY, Co, DC, FC),
            pos("not_member", a, Y),
            pos("outside_all", Y, Fd, FYx),
            pos("eq", FY, FYx),
            pos("oset_minus_is", Co, a, DC),
        )
    )
    return Program(rules, builtin_names=_BUILTIN_NAMES)


class PrimalityDatalog:
    """Figure 6, executed by a pluggable datalog backend.

    ``backend`` is any name registered in
    :mod:`repro.datalog.backends`; ``"magic"`` evaluates goal-directed
    on the 0-ary ``success`` predicate.  The cache is per-instance
    because :func:`primality_registry` bakes the schema into its
    built-ins (same names, schema-specific semantics).
    """

    def __init__(self, schema: RelationalSchema, backend: str = "semi-naive"):
        self.schema = schema
        self.registry = primality_registry(schema)
        self.backend_name = backend
        self._cache = ProgramCache()

    def decide(
        self,
        attribute: Attribute,
        td: TreeDecomposition | None = None,
    ) -> bool:
        nice = prepare_decision_decomposition(self.schema, attribute, td)
        encoded = encode_for_primality(self.schema, nice)
        program = primality_program(attribute)
        backend = get_backend(self.backend_name, self._cache)
        db = backend.evaluate(
            program, encoded, registry=self.registry, query="success"
        )
        return db.contains("success", ())


# ----------------------------------------------------------------------
# Section 5.3: the Monadic-Primality enumeration program
# ----------------------------------------------------------------------


def _solvedown_rules() -> list:
    """Top-down rules for ``solvedown`` (the paper's solve↓).

    The recursion mirrors :func:`_solve_rules` with introduction and
    removal swapped: walking down through an introduction node removes
    the introduced element from the envelope window, and vice versa; at
    a branch node the down-state of one child combines the parent's
    down-state with the sibling's up-state.
    """
    S, S1, S2 = var("S"), var("S1"), var("S2")
    At, AtB, Fd, FdF = var("At"), var("AtB"), var("Fd"), var("FdF")
    B, F, FS = var("B"), var("F"), var("FS")
    Y, YB = var("Y"), var("YB")
    FY, FY1, FY2, FYB = var("FY"), var("FY1"), var("FY2"), var("FYB")
    Co, Co2, CoSet = var("Co"), var("Co2"), var("CoSet")
    DC, DC1, DC2, DCB = var("DC"), var("DC1"), var("DC2"), var("DCB")
    FC, FCF = var("FC"), var("FCF")
    down = "solvedown"

    rules = [
        # base case at the root (the envelope of the root is the root bag)
        rule(
            atom(down, S, Y, FY, Co, DC, FC),
            pos("root", S),
            pos("bag", S, At, Fd),
            pos("partition2", At, Y, CoSet),
            pos("orderings", CoSet, Co),
            pos("outside", FY, Y, At, Fd),
            pos("subset", FC, Fd),
            pos("consistent", FC, Co),
            pos("rhs_set", FC, DC),
        ),
        # downward through an attribute-introduction node: remove b.
        # b leaves Y:
        rule(
            atom(down, S1, Y, FY, Co, DC, FC),
            pos("bag", S, AtB, Fd),
            pos("child1", S1, S),
            pos("bag", S1, At, Fd),
            pos("add", At, B, AtB),
            pos("att", B),
            pos(down, S, YB, FY, Co, DC, FC),
            pos("add", Y, B, YB),
        ),
        # b leaves Co (derivation verified within the envelope):
        rule(
            atom(down, S1, Y, FY, Co, DC, FC),
            pos("bag", S, AtB, Fd),
            pos("child1", S1, S),
            pos("bag", S1, At, Fd),
            pos("add", At, B, AtB),
            pos("att", B),
            pos(down, S, Y, FY, Co2, DCB, FC),
            pos("oinsert", Co, B, Co2),
            pos("add", DC, B, DCB),
        ),
        # downward through an attribute-removal node: introduce b.
        # b joins Y:
        rule(
            atom(down, S1, YB, FY, Co, DC, FC),
            pos("bag", S, At, Fd),
            pos("child1", S1, S),
            pos("bag", S1, AtB, Fd),
            pos("add", At, B, AtB),
            pos("att", B),
            pos(down, S, Y, FY, Co, DC, FC),
            pos("add", Y, B, YB),
        ),
        # b joins Co:
        rule(
            atom(down, S1, Y, FY, Co2, DC, FC),
            pos("bag", S, At, Fd),
            pos("child1", S1, S),
            pos("bag", S1, AtB, Fd),
            pos("add", At, B, AtB),
            pos("att", B),
            pos(down, S, Y, FY1, Co, DC, FC),
            pos("oinsert", Co, B, Co2),
            pos("consistent", FC, Co2),
            pos("outside", FY2, Y, AtB, Fd),
            pos("union", FY1, FY2, FY),
        ),
        # downward through an FD-introduction node: remove f.
        # rhs(f) in Y:
        rule(
            atom(down, S1, Y, FY, Co, DC, FC),
            pos("bag", S, At, FdF),
            pos("child1", S1, S),
            pos("bag", S1, At, Fd),
            pos("add", Fd, F, FdF),
            pos("fd", F),
            pos("rh", B, F),
            pos(down, S, Y, FY, Co, DC, FC),
            pos("member", B, Y),
        ),
        # rhs(f) in Co, f was used:
        rule(
            atom(down, S1, Y, FY, Co, DC, FC),
            pos("bag", S, At, FdF),
            pos("child1", S1, S),
            pos("bag", S1, At, Fd),
            pos("add", Fd, F, FdF),
            pos("fd", F),
            pos("rh", B, F),
            pos(down, S, Y, FYB, Co, DC, FCF),
            pos("member_oset", B, Co),
            pos("add", FY, F, FYB),
            pos("add", FC, F, FCF),
        ),
        # rhs(f) in Co, f not used:
        rule(
            atom(down, S1, Y, FY, Co, DC, FC),
            pos("bag", S, At, FdF),
            pos("child1", S1, S),
            pos("bag", S1, At, Fd),
            pos("add", Fd, F, FdF),
            pos("fd", F),
            pos("rh", B, F),
            pos(down, S, Y, FYB, Co, DC, FC),
            pos("member_oset", B, Co),
            pos("add", FY, F, FYB),
            pos("not_member", F, FC),
        ),
        # downward through an FD-removal node: introduce f.
        # rhs(f) in Y:
        rule(
            atom(down, S1, Y, FY, Co, DC, FC),
            pos("bag", S, At, Fd),
            pos("child1", S1, S),
            pos("bag", S1, At, FdF),
            pos("add", Fd, F, FdF),
            pos("fd", F),
            pos("rh", B, F),
            pos(down, S, Y, FY, Co, DC, FC),
            pos("member", B, Y),
        ),
        # rhs(f) in Co, f used:
        rule(
            atom(down, S1, Y, FY, Co, DCB, FCF),
            pos("bag", S, At, Fd),
            pos("child1", S1, S),
            pos("bag", S1, At, FdF),
            pos("add", Fd, F, FdF),
            pos("fd", F),
            pos("rh", B, F),
            pos(down, S, Y, FY1, Co, DC, FC),
            pos("member_oset", B, Co),
            pos("add", DC, B, DCB),
            pos("add", FC, F, FCF),
            pos("singleton", F, FS),
            pos("consistent", FS, Co),
            pos("outside", FY2, Y, At, FS),
            pos("union", FY1, FY2, FY),
        ),
        # rhs(f) in Co, f not used:
        rule(
            atom(down, S1, Y, FY, Co, DC, FC),
            pos("bag", S, At, Fd),
            pos("child1", S1, S),
            pos("bag", S1, At, FdF),
            pos("add", Fd, F, FdF),
            pos("fd", F),
            pos("rh", B, F),
            pos(down, S, Y, FY1, Co, DC, FC),
            pos("member_oset", B, Co),
            pos("singleton", F, FS),
            pos("outside", FY2, Y, At, FS),
            pos("union", FY1, FY2, FY),
        ),
        # downward through a branch node: combine with the sibling's
        # bottom-up state (both orders).
    ]
    for new_leaf, sibling in ((S1, S2), (S2, S1)):
        rules.append(
            rule(
                atom(down, new_leaf, Y, FY, Co, DC, FC),
                pos("bag", S, At, Fd),
                pos("child1", S1, S),
                pos("child2", S2, S),
                pos("bag", S1, At, Fd),
                pos("bag", S2, At, Fd),
                pos(down, S, Y, FY1, Co, DC1, FC),
                pos("solve", sibling, Y, FY2, Co, DC2, FC),
                pos("unique", DC1, DC2, FC),
                pos("union", FY1, FY2, FY),
                pos("union", DC1, DC2, DC),
            )
        )
    rules.append(
        # copy node: identity
        rule(
            atom(down, S1, Y, FY, Co, DC, FC),
            pos("copynode", S),
            pos("child1", S1, S),
            pos(down, S, Y, FY, Co, DC, FC),
        )
    )
    return rules


def enumeration_program() -> Program:
    """The Monadic-Primality program (Section 5.3): ``solve`` +
    ``solvedown`` + the ``prime`` rule at the leaves."""
    S = var("S")
    At, Fd = var("At"), var("Fd")
    A = var("A")
    Y, FY, Co, DC, FC, FYx = (
        var("Y"),
        var("FY"),
        var("Co"),
        var("DC"),
        var("FC"),
        var("FYx"),
    )
    rules = _solve_rules() + _solvedown_rules()
    rules.append(
        rule(
            atom("prime", A),
            pos("leaf", S),
            pos("bag", S, At, Fd),
            pos("att", A),
            pos("member", A, At),
            pos("solvedown", S, Y, FY, Co, DC, FC),
            pos("not_member", A, Y),
            pos("outside_all", Y, Fd, FYx),
            pos("eq", FY, FYx),
            pos("oset_minus_is", Co, A, DC),
        )
    )
    return Program(rules, builtin_names=_BUILTIN_NAMES)


def prime_attributes_datalog(
    schema: RelationalSchema,
    td: TreeDecomposition | None = None,
) -> frozenset[Attribute]:
    """All prime attributes via the Monadic-Primality datalog program."""
    nice = prepare_enumeration_decomposition(schema, td)
    encoded = encode_for_primality(schema, nice)
    evaluator = SemiNaiveEvaluator(
        enumeration_program(), primality_registry(schema)
    )
    db = evaluator.evaluate(encoded)
    return frozenset(args[0] for args in db.relation("prime"))
