"""Definite-Horn abduction: the paper's closing application.

Conclusion of the paper: "the PRIMALITY problem is closely related to an
important problem in the area of artificial intelligence, namely the
relevance problem of propositional abduction ...  if the clausal theory
is restricted to definite Horn clauses and if we are only interested in
minimal explanations, then the relevance problem is basically the same
as the problem of deciding primality in a subschema R' ⊆ R."

A propositional abduction problem (PAP) is ``(V, H, M, T)``: variables,
hypotheses H ⊆ V, manifestations M ⊆ V, and a definite-Horn theory T.
``E ⊆ H`` is an *explanation* iff ``T ∪ E |= M``; a hypothesis is
*relevant* iff it belongs to some ⊆-minimal explanation and *necessary*
iff it belongs to every explanation.

The reduction implemented by :func:`relevance_schema`: add a fresh
attribute μ with FDs ``M -> μ`` and ``μ -> v`` for every variable; then
``E+ = V ∪ {μ}`` iff E is an explanation, so h is relevant iff h is
part of a minimal key drawn from H -- primality in the subschema H,
decided by :func:`repro.problems.subschema.is_prime_in_subschema`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Iterator

from ..structures.schema import FunctionalDependency, RelationalSchema
from .._util import powerset
from .subschema import is_prime_in_subschema

Variable = str

#: The fresh manifestation-collector attribute of the reduction.
GOAL = "µ"


@dataclass(frozen=True)
class HornClause:
    """A definite Horn clause ``body -> head`` (facts have empty body)."""

    body: frozenset[Variable]
    head: Variable

    def __str__(self) -> str:
        if not self.body:
            return self.head
        return f"{' & '.join(sorted(self.body))} -> {self.head}"


class AbductionProblem:
    """A propositional abduction problem over a definite-Horn theory."""

    def __init__(
        self,
        variables: Iterable[Variable],
        hypotheses: Iterable[Variable],
        manifestations: Iterable[Variable],
        theory: Iterable[HornClause],
    ):
        self.variables = frozenset(variables)
        self.hypotheses = frozenset(hypotheses)
        self.manifestations = frozenset(manifestations)
        self.theory = tuple(theory)
        if not self.manifestations:
            raise ValueError("need at least one manifestation")
        for name, subset in (
            ("hypotheses", self.hypotheses),
            ("manifestations", self.manifestations),
        ):
            unknown = subset - self.variables
            if unknown:
                raise ValueError(f"{name} outside the variables: {sorted(unknown)}")
        for clause in self.theory:
            unknown = (clause.body | {clause.head}) - self.variables
            if unknown:
                raise ValueError(f"clause {clause} uses unknown {sorted(unknown)}")
        if GOAL in self.variables:
            raise ValueError(f"variable name {GOAL!r} is reserved")

    @classmethod
    def parse(cls, text: str) -> "AbductionProblem":
        """``"vars: a b c; hyp: a b; obs: c; a & b -> c"``."""
        sections = [part.strip() for part in text.split(";") if part.strip()]
        variables: list[str] = []
        hypotheses: list[str] = []
        manifestations: list[str] = []
        clauses: list[HornClause] = []
        for section in sections:
            if section.startswith("vars:"):
                variables = section[5:].split()
            elif section.startswith("hyp:"):
                hypotheses = section[4:].split()
            elif section.startswith("obs:"):
                manifestations = section[4:].split()
            else:
                left, arrow, right = section.partition("->")
                if not arrow:
                    raise ValueError(f"clause {section!r} lacks '->'")
                body = frozenset(
                    term.strip() for term in left.split("&") if term.strip()
                )
                clauses.append(HornClause(body, right.strip()))
        return cls(variables, hypotheses, manifestations, clauses)

    # -- semantics -------------------------------------------------------

    def consequences(self, assumptions: Iterable[Variable]) -> frozenset[Variable]:
        """Forward chaining: everything T ∪ assumptions entails."""
        derived = set(assumptions)
        changed = True
        while changed:
            changed = False
            for clause in self.theory:
                if clause.head not in derived and clause.body <= derived:
                    derived.add(clause.head)
                    changed = True
        return frozenset(derived)

    def is_explanation(self, hypotheses: Iterable[Variable]) -> bool:
        chosen = frozenset(hypotheses)
        if not chosen <= self.hypotheses:
            raise ValueError("explanations must consist of hypotheses")
        return self.manifestations <= self.consequences(chosen)

    def minimal_explanations(self) -> Iterator[frozenset[Variable]]:
        """All ⊆-minimal explanations (exponential enumeration)."""
        found: list[frozenset[Variable]] = []
        for subset in powerset(sorted(self.hypotheses)):
            candidate = frozenset(subset)
            if any(smaller <= candidate for smaller in found):
                continue
            if self.is_explanation(candidate):
                found.append(candidate)
                yield candidate

    def is_solvable(self) -> bool:
        return self.is_explanation(self.hypotheses)

    # -- relevance / necessity -------------------------------------------

    def relevant_bruteforce(self, hypothesis: Variable) -> bool:
        """h in some minimal explanation; ground truth."""
        self._check_hypothesis(hypothesis)
        return any(
            hypothesis in explanation
            for explanation in self.minimal_explanations()
        )

    def necessary_bruteforce(self, hypothesis: Variable) -> bool:
        """h in *every* explanation (equivalently every minimal one)."""
        self._check_hypothesis(hypothesis)
        if not self.is_solvable():
            return False
        return not self.is_explanation(self.hypotheses - {hypothesis})

    def _check_hypothesis(self, hypothesis: Variable) -> None:
        if hypothesis not in self.hypotheses:
            raise ValueError(f"{hypothesis!r} is not a hypothesis")

    # -- the reduction to subschema primality -----------------------------

    def relevance_schema(self) -> RelationalSchema:
        """The schema whose H-restricted keys are the explanations."""
        from .._util import fresh_names

        attributes = sorted(self.variables) + [GOAL]
        names = fresh_names("f", self.variables | {GOAL})
        fds: list[FunctionalDependency] = []
        for clause in self.theory:
            # a fact (empty body) is an FD with empty lhs: it belongs to
            # every closed set, exactly like a consequence of T alone.
            fds.append(
                FunctionalDependency(next(names), clause.body, clause.head)
            )
        fds.append(
            FunctionalDependency(
                next(names), frozenset(self.manifestations), GOAL
            )
        )
        for variable in sorted(self.variables):
            fds.append(
                FunctionalDependency(next(names), frozenset({GOAL}), variable)
            )
        return RelationalSchema(attributes, fds)

    def relevant(self, hypothesis: Variable) -> bool:
        """Relevance via bounded-treewidth subschema primality.

        h is relevant iff h is part of a minimal X ⊆ H with X+ = R in
        :meth:`relevance_schema` -- the paper's reduction, decided by
        the extended Figure 6 dynamic program.
        """
        self._check_hypothesis(hypothesis)
        schema = self.relevance_schema()
        return is_prime_in_subschema(schema, hypothesis, self.hypotheses)

    def __repr__(self) -> str:
        return (
            f"AbductionProblem(|V|={len(self.variables)}, "
            f"|H|={len(self.hypotheses)}, |M|={len(self.manifestations)}, "
            f"|T|={len(self.theory)})"
        )
