"""Timing and table-formatting utilities shared by the benchmarks.

The paper reports milliseconds per instance in Table 1; these helpers
measure in the same unit and render aligned text tables so that the
benchmark output can be compared to the paper's side by side (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..datalog.backends import get_backend
from ..datalog.evaluate import EvaluationStats
from ..datalog.setengine import SetDatabase


def time_ms(fn: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock time of ``fn()`` in milliseconds."""
    best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        fn()
        elapsed = (time.perf_counter() - start) * 1000.0
        best = min(best, elapsed)
    return best


def format_ms(value: float | None) -> str:
    """Milliseconds with paper-style precision; None renders as "-"
    (the paper's out-of-memory dash)."""
    if value is None:
        return "-"
    if value < 10:
        return f"{value:.1f}"
    return f"{value:.0f}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """A plain aligned text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines += [fmt(row) for row in rows]
    return "\n".join(lines)


@dataclass
class BackendRun:
    """One backend's cost on one workload instance."""

    backend: str
    ms: float
    facts_derived: int
    rule_firings: int


def compare_backends(
    program,
    edb,
    query=None,
    backends: Sequence[str] | None = None,
    repeat: int = 3,
    cache=None,
) -> list[BackendRun]:
    """Head-to-head evaluation of the same workload on several backends.

    ``backends`` defaults to every shipped backend when a ``query`` is
    given and to the non-goal-directed ones otherwise (the magic
    backend needs a query; naming it explicitly without one is still
    an error).  Each backend gets one warm-up run (so the
    compiled-program cache is hot and the timings measure
    per-structure work, which is what the backends differ on), then
    best-of-``repeat`` wall clock.

    The EDB is interned into a :class:`SetDatabase` **once per compare
    run** (ROADMAP item (e)): interning backends receive that database
    and start each evaluation from a cheap
    :meth:`~repro.datalog.setengine.SetDatabase.snapshot` instead of
    re-paying the per-tuple structure load, while the tuple-at-a-time
    ablations keep receiving the raw EDB they operate on.
    """
    if backends is None:
        backends = (
            ("naive", "semi-naive", "semi-naive-tuple", "magic")
            if query is not None
            else ("naive", "semi-naive", "semi-naive-tuple")
        )
    interned_edb = None  # built on the first backend that can use it
    runs: list[BackendRun] = []
    for name in backends:
        backend = get_backend(name, cache)
        if hasattr(backend, "evaluate_interned"):
            if interned_edb is None:
                interned_edb = SetDatabase.from_edb(edb)
            source = interned_edb
        else:
            source = edb
        # every backend accepts query=; non-goal-directed ones ignore it
        backend.evaluate(program, source, query=query)  # warm-up / cache fill
        stats = EvaluationStats()
        backend.evaluate(program, source, query=query, stats=stats)
        ms = time_ms(
            lambda: backend.evaluate(program, source, query=query),
            repeat=repeat,
        )
        runs.append(
            BackendRun(name, ms, stats.facts_derived, stats.rule_firings)
        )
    return runs


@dataclass
class LinearityReport:
    """Least-squares fit diagnostics for 'is the scaling linear?'."""

    slope: float
    intercept: float
    r_squared: float

    @property
    def is_convincingly_linear(self) -> bool:
        return self.r_squared > 0.9


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> LinearityReport:
    """Ordinary least squares y = a*x + b with R^2."""
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("degenerate x values")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearityReport(slope, intercept, r_squared)
