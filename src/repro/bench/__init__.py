"""Benchmark harness shared by benchmarks/ and examples/."""

from .harness import (
    BackendRun,
    LinearityReport,
    compare_backends,
    fit_linear,
    format_ms,
    format_table,
    time_ms,
)
from .workloads import atd_cover_program
from .table1 import (
    DECISION_ATTRIBUTE,
    PAPER_MD_MS,
    PAPER_MONA_MS,
    PAPER_TREE_NODES,
    Table1Row,
    md_linearity,
    render_table1,
    run_table1,
)

__all__ = [
    "BackendRun",
    "DECISION_ATTRIBUTE",
    "LinearityReport",
    "compare_backends",
    "PAPER_MD_MS",
    "PAPER_MONA_MS",
    "PAPER_TREE_NODES",
    "Table1Row",
    "atd_cover_program",
    "fit_linear",
    "format_ms",
    "format_table",
    "md_linearity",
    "render_table1",
    "run_table1",
    "time_ms",
]
