"""The Table 1 experiment driver (Section 6).

For each workload row (tw=3; #Att/#FD/#tn growing) we measure:

* **MD** -- the PRIMALITY decision algorithm of Figure 6, the direct
  dynamic program (our analogue of the paper's C++ implementation);
* **MD (datalog)** -- the same program run by the semi-naive datalog
  interpreter (an extra column the paper did not report);
* **MONA stand-in** -- direct MSO evaluation of the Example 2.6 query
  under a step budget; "-" marks budget exhaustion, the analogue of the
  paper's out-of-memory dashes (DESIGN.md §5 records the substitution).

The paper's own measurements (1.6 GHz Pentium M, C++, 2007) are kept in
:data:`PAPER_MD_MS`/:data:`PAPER_MONA_MS` so the shape can be compared
row by row; absolute values are not expected to match.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mso.eval import Budget, BudgetExceeded, evaluate
from ..mso.formulas import primality as primality_formula
from ..problems.generators import TABLE1_SIZES, Table1Instance, table1_instance
from ..problems.primality import (
    PrimalityDatalog,
    prepare_decision_decomposition,
    primality_direct,
)
from .harness import fit_linear, format_ms, format_table, time_ms

#: Paper Table 1, "MD" column (ms).
PAPER_MD_MS = (0.1, 0.2, 0.4, 0.5, 0.8, 1.0, 1.2, 1.6, 1.8, 1.9, 2.2)
#: Paper Table 1, "MONA" column (ms); None = out-of-memory dash.
PAPER_MONA_MS = (650, 9210, 17930, None, None, None, None, None, None, None, None)
#: Paper Table 1, "#tn" column (number of tree nodes).
PAPER_TREE_NODES = (3, 12, 21, 34, 69, 105, 141, 193, 229, 265, 301)

#: The attribute whose primality each row decides (present in every row).
DECISION_ATTRIBUTE = "p0"


@dataclass
class Table1Row:
    num_attributes: int
    num_fds: int
    tree_nodes: int
    md_ms: float
    md_datalog_ms: float | None
    mona_ms: float | None  # None = budget exhausted ("-")
    paper_md_ms: float
    paper_mona_ms: float | None


def _mona_standin_ms(
    instance: Table1Instance, budget_steps: int
) -> float | None:
    """Time the budgeted naive MSO evaluation, or None on exhaustion."""
    structure = instance.schema.to_structure()
    formula = primality_formula("x")

    def run() -> None:
        evaluate(
            structure,
            formula,
            {"x": DECISION_ATTRIBUTE},
            budget=Budget(limit=budget_steps),
        )

    try:
        return time_ms(run, repeat=1)
    except BudgetExceeded:
        return None


def run_table1(
    max_rows: int | None = None,
    repeat: int = 3,
    mona_budget_steps: int = 3_000_000,
    include_datalog: bool = True,
) -> list[Table1Row]:
    """Measure every Table 1 row; see the module docstring."""
    rows: list[Table1Row] = []
    sizes = TABLE1_SIZES[:max_rows] if max_rows else TABLE1_SIZES
    for index, (num_att, num_fd) in enumerate(sizes):
        instance = table1_instance(num_fd)
        nice = prepare_decision_decomposition(
            instance.schema, DECISION_ATTRIBUTE, instance.decomposition
        )
        md_ms = time_ms(
            lambda: primality_direct(
                instance.schema, DECISION_ATTRIBUTE, instance.decomposition
            ),
            repeat=repeat,
        )
        md_datalog_ms = None
        if include_datalog:
            solver = PrimalityDatalog(instance.schema)
            md_datalog_ms = time_ms(
                lambda: solver.decide(
                    DECISION_ATTRIBUTE, instance.decomposition
                ),
                repeat=1,
            )
        mona_ms = _mona_standin_ms(instance, mona_budget_steps)
        rows.append(
            Table1Row(
                num_attributes=num_att,
                num_fds=num_fd,
                tree_nodes=nice.node_count(),
                md_ms=md_ms,
                md_datalog_ms=md_datalog_ms,
                mona_ms=mona_ms,
                paper_md_ms=PAPER_MD_MS[index],
                paper_mona_ms=PAPER_MONA_MS[index],
            )
        )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """Paper-style text rendering with paper columns alongside."""
    headers = [
        "tw",
        "#Att",
        "#FD",
        "#tn",
        "MD (ms)",
        "MD-datalog (ms)",
        "MONA-standin (ms)",
        "paper MD",
        "paper MONA",
    ]
    body = [
        [
            3,
            row.num_attributes,
            row.num_fds,
            row.tree_nodes,
            format_ms(row.md_ms),
            format_ms(row.md_datalog_ms),
            format_ms(row.mona_ms),
            format_ms(row.paper_md_ms),
            format_ms(row.paper_mona_ms),
        ]
        for row in rows
    ]
    return format_table(headers, body)


def md_linearity(rows: list[Table1Row]):
    """Fit MD time against the instance size (#tn): the Table 1 claim is
    an 'essentially linear increase of the processing time'."""
    return fit_linear(
        [row.tree_nodes for row in rows], [row.md_ms for row in rows]
    )
