"""Shared benchmark/test workload builders.

These live in the library (not in ``benchmarks/``) because the
CI-gated solver benchmark and the regression test-suite must measure
and validate the *same* programs -- a private copy in either place
could drift silently.
"""

from __future__ import annotations

from ..datalog.ast import Program, atom, pos, rule, var

__all__ = ["atd_cover_program"]


def atd_cover_program(bag_arity: int) -> Program:
    """A Figure-style quasi-guarded DP over an ``A_td`` encoding.

    Marks every decomposition node bottom-up (bag-guarded
    leaf/child1/child2 recursion), projects every bag element into the
    monadic ``covered`` predicate, and accepts at the root -- the same
    rule shapes the Theorem 4.5 compiler emits, parameterized by the
    bag arity so it runs at any width (the generic compiler's
    practical envelope stops at width 1, so wide-bag structures like
    grids are exercised through this program instead).
    """
    xs = [var(f"X{i}") for i in range(bag_arity - 1)]
    v, v1, v2 = var("V"), var("V1"), var("V2")
    return Program(
        [
            rule(atom("t", v), pos("bag", v, *xs), pos("leaf", v)),
            rule(
                atom("t", v),
                pos("bag", v, *xs),
                pos("child1", v1, v),
                pos("t", v1),
            ),
            rule(
                atom("t", v),
                pos("bag", v, *xs),
                pos("child2", v2, v),
                pos("t", v2),
            ),
            *[
                rule(atom("covered", x), pos("bag", v, *xs), pos("t", v))
                for x in xs
            ],
            rule(atom("ok"), pos("root", v), pos("t", v)),
        ]
    )
