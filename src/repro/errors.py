"""Typed exception taxonomy for untrusted-input admission.

The historical error surface of the stack is bare ``ValueError``\\ s with
first-fail messages (``treewidth/decomposition.py``'s validators, the
solver's width refusal).  The admission layer (:mod:`repro.admission`)
needs more: *every* violation collected, machine-readable, and an error
type a service can switch on without parsing strings.

Design constraints:

* **ValueError compatibility.**  Ten PRs of call sites (and the test
  suite) catch ``ValueError`` around validation; every class here
  subclasses it so existing handlers keep working.
* **Structured first.**  A :class:`Violation` is a frozen record --
  ``code`` (stable machine identifier), ``message`` (human text,
  preserving the legacy substrings callers match on), ``subject`` (the
  offending elements/nodes/predicates) and ``repairable`` (whether
  :func:`repro.admission.repair_decomposition` knows how to fix it in
  place).
* **Picklable.**  These exceptions cross the solver service's worker
  pipes; each defines ``__reduce__`` so a rejection raised in a worker
  arrives intact (violations, report and all) on the caller's future.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AdmissionRejected",
    "InvalidDecomposition",
    "InvalidStructure",
    "Violation",
    "ViolationError",
    "WidthExceeded",
]


@dataclass(frozen=True)
class Violation:
    """One machine-readable defect found during admission verification.

    ``code`` is a stable identifier (``"element-uncovered"``,
    ``"arity-mismatch"``, ...); ``subject`` pins the offending values
    (elements, tree nodes, predicate names) as a tuple so reports stay
    hashable and picklable; ``repairable`` marks defects the in-place
    repair pass can fix (as opposed to ones that force a re-decompose
    or a rejection).
    """

    code: str
    message: str
    subject: tuple = ()
    repairable: bool = False

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "subject": [repr(s) for s in self.subject],
            "repairable": self.repairable,
        }


def summarize_violations(violations) -> str:
    """One line per violation, joined -- the human face of a report."""
    return "; ".join(v.message for v in violations)


class ViolationError(ValueError):
    """A ``ValueError`` carrying the full list of structured violations.

    ``str(exc)`` keeps every individual message (so legacy
    ``pytest.raises(ValueError, match=...)`` substring pins keep
    matching), while ``exc.violations`` gives callers the records.
    """

    def __init__(self, message: str, violations=()):
        super().__init__(message)
        self.violations: tuple[Violation, ...] = tuple(violations)

    @classmethod
    def from_violations(cls, violations, prefix: str | None = None):
        violations = tuple(violations)
        message = summarize_violations(violations)
        if prefix:
            message = f"{prefix}: {message}" if message else prefix
        return cls(message, violations)

    def __reduce__(self):
        return (type(self), (self.args[0] if self.args else "", self.violations))


class InvalidStructure(ViolationError):
    """The structure itself fails verification against the expected
    signature: unknown predicates, arity mismatches, domain-closure
    breaks, or an object too corrupt to read at all."""


class InvalidDecomposition(ViolationError):
    """The supplied tree decomposition violates the Section 2.2 axioms
    (or the Definition 2.3 / Section 5 normal-form shape)."""


class WidthExceeded(InvalidDecomposition):
    """The decomposition's width exceeds the compiled envelope.

    Tractability (Theorem 4.4) holds only within the compiled width, so
    this is the one violation that cannot be repaired in place -- only
    re-decomposed below the envelope, degraded to direct MSO
    evaluation, or rejected.  ``width`` / ``limit`` quantify the
    overshoot; ``fingerprint`` identifies the structure
    (:func:`repro.structures.structure_fingerprint`) so the caller can
    act on the rejection without holding the structure."""

    def __init__(
        self,
        message: str,
        violations=(),
        *,
        width: int | None = None,
        limit: int | None = None,
        fingerprint: str | None = None,
    ):
        super().__init__(message, violations)
        self.width = width
        self.limit = limit
        self.fingerprint = fingerprint

    def __reduce__(self):
        return (
            _rebuild_width_exceeded,
            (
                self.args[0] if self.args else "",
                self.violations,
                self.width,
                self.limit,
                self.fingerprint,
            ),
        )


def _rebuild_width_exceeded(message, violations, width, limit, fingerprint):
    return WidthExceeded(
        message,
        violations,
        width=width,
        limit=limit,
        fingerprint=fingerprint,
    )


class AdmissionRejected(ViolationError):
    """The admission ladder ran out of rungs: the request cannot be
    served under its policy.

    ``report`` is the full :class:`repro.admission.AdmissionReport` --
    every violation found, every repair attempted, and why the ladder
    stopped (``report.verdict == "rejected"``).  Raised by
    :func:`repro.admission.admit` /
    :meth:`repro.core.CourcelleSolver.solve_admitted`; the solver
    service quarantines the report's fingerprint so resubmissions
    fail fast."""

    def __init__(self, message: str, violations=(), *, report=None):
        super().__init__(message, violations)
        self.report = report

    def __reduce__(self):
        return (
            _rebuild_admission_rejected,
            (self.args[0] if self.args else "", self.violations, self.report),
        )


def _rebuild_admission_rejected(message, violations, report):
    return AdmissionRejected(message, violations, report=report)
