"""Normalized tree decompositions (Definition 2.3, Proposition 2.4).

The normal form used for the generic MSO-to-datalog construction of
Section 4:

1. bags are *tuples* of exactly ``w + 1`` pairwise distinct elements;
2. every internal node has 1 or 2 children;
3. a node with one child is a *permutation node* (child bag is a
   permutation of the parent's) or an *element replacement node* (child
   bag replaces the parent's position-0 element);
4. a node with two children is a *branch node* and both children carry
   the parent's bag verbatim.

:func:`normalize` implements the five-step linear-time transformation of
Proposition 2.4 (padding, binarization, branch equalization,
interpolation, tuple assignment) and preserves the width exactly.
"""

from __future__ import annotations

from enum import Enum
from typing import Mapping

from ..errors import Violation
from ..structures.structure import Element, Structure
from .decomposition import (
    NodeId,
    RootedTree,
    TreeDecomposition,
    validate_refinement,
)


class NormalizedNodeKind(Enum):
    LEAF = "leaf"
    PERMUTATION = "permutation"
    ELEMENT_REPLACEMENT = "element_replacement"
    BRANCH = "branch"


class NormalizedTreeDecomposition:
    """A Definition 2.3 normal-form decomposition with tuple bags."""

    __slots__ = ("tree", "tuples")

    def __init__(
        self, tree: RootedTree, tuples: Mapping[NodeId, tuple[Element, ...]]
    ):
        self.tree = tree
        self.tuples = {n: tuple(tuples[n]) for n in tree.nodes()}
        widths = {len(t) for t in self.tuples.values()}
        if len(widths) > 1:
            raise ValueError(f"bags have mixed sizes {sorted(widths)}")

    @property
    def width(self) -> int:
        return len(next(iter(self.tuples.values()))) - 1

    def bag(self, node: NodeId) -> tuple[Element, ...]:
        return self.tuples[node]

    def node_count(self) -> int:
        return self.tree.node_count()

    def as_set_decomposition(self) -> TreeDecomposition:
        return TreeDecomposition(
            self.tree.copy(), {n: frozenset(t) for n, t in self.tuples.items()}
        )

    def node_kind(self, node: NodeId) -> NormalizedNodeKind:
        """Classify ``node`` per Definition 2.3 (raises if malformed)."""
        children = self.tree.children(node)
        if len(children) == 0:
            return NormalizedNodeKind.LEAF
        if len(children) == 2:
            here = self.tuples[node]
            if any(self.tuples[c] != here for c in children):
                raise ValueError(f"branch node {node} has non-identical children")
            return NormalizedNodeKind.BRANCH
        if len(children) != 1:
            raise ValueError(f"node {node} has {len(children)} children")
        here = self.tuples[node]
        child = self.tuples[children[0]]
        if set(child) == set(here):
            return NormalizedNodeKind.PERMUTATION
        if child[1:] == here[1:] and child[0] != here[0]:
            return NormalizedNodeKind.ELEMENT_REPLACEMENT
        raise ValueError(
            f"node {node} is neither permutation nor element replacement: "
            f"{here} -> {child}"
        )

    def permutation_of(self, node: NodeId) -> tuple[int, ...]:
        """For a permutation node: pi with child_bag[i] == bag[pi[i]]."""
        here = self.tuples[node]
        (child,) = self.tree.children(node)
        child_bag = self.tuples[child]
        position = {x: i for i, x in enumerate(here)}
        return tuple(position[x] for x in child_bag)

    def validate(self, structure: Structure | None = None) -> None:
        """Check Definition 2.3 plus (optionally) the TD axioms."""
        distinctness = [
            Violation(
                "bag-repeats-elements",
                f"bag of {node} repeats elements: {bag}",
                subject=(node,),
            )
            for node, bag in self.tuples.items()
            if len(set(bag)) != len(bag)
        ]
        validate_refinement(self, structure, extra=distinctness)

    def __repr__(self) -> str:
        return (
            f"NormalizedTreeDecomposition(nodes={self.node_count()}, "
            f"width={self.width})"
        )


# ----------------------------------------------------------------------
# Proposition 2.4: the normalization pipeline
# ----------------------------------------------------------------------


def widen(td: TreeDecomposition, width: int) -> TreeDecomposition:
    """Grow a decomposition of smaller width to exactly ``width``.

    Repeatedly borrows one element from an adjacent bag (which preserves
    connectedness) until some bag has ``width + 1`` elements; the
    pad-sweep then fills the rest.  Raises if the decomposition covers
    fewer than ``width + 1`` elements (the paper's "w.l.o.g. the domain
    has at least w + 1 elements").
    """
    if td.width > width:
        raise ValueError(f"decomposition already wider than {width}")
    if len(td.all_elements()) < width + 1:
        raise ValueError(
            f"cannot widen to {width}: only {len(td.all_elements())} elements"
        )
    td = td.copy()
    bags = dict(td.bags)
    target = width + 1

    def grow_once() -> None:
        for node in td.tree.preorder():
            neighbors = list(td.tree.children(node))
            parent = td.tree.parent(node)
            if parent is not None:
                neighbors.append(parent)
            for nbr in neighbors:
                surplus = sorted(bags[nbr] - bags[node], key=repr)
                if surplus:
                    bags[node] = bags[node] | {surplus[0]}
                    return
        raise ValueError("cannot widen: all bags already equal")

    while max(len(b) for b in bags.values()) < target:
        grow_once()
    return pad_bags_to_full_size(TreeDecomposition(td.tree, bags), width)


def pad_bags_to_full_size(
    td: TreeDecomposition, width: int | None = None
) -> TreeDecomposition:
    """Step (1): grow every bag to ``w + 1`` elements.

    Elements are borrowed from adjacent larger bags, which preserves the
    connectedness condition (the borrowed element's subtree gains an
    adjacent node).  At least one bag is full by the definition of
    width, so repeated sweeps terminate.
    """
    td = td.copy()
    target = (width if width is not None else td.width) + 1
    bags = dict(td.bags)
    changed = True
    while changed:
        changed = False
        for node in td.tree.preorder():
            neighbors = list(td.tree.children(node))
            parent = td.tree.parent(node)
            if parent is not None:
                neighbors.append(parent)
            for nbr in neighbors:
                need = target - len(bags[nbr])
                if need <= 0:
                    continue
                surplus = sorted(bags[node] - bags[nbr], key=repr)[:need]
                if surplus:
                    bags[nbr] = bags[nbr] | frozenset(surplus)
                    changed = True
    short = [n for n, b in bags.items() if len(b) != target]
    if short:
        raise ValueError(f"could not pad bags of nodes {short}")
    return TreeDecomposition(td.tree, bags)


def binarize(td: TreeDecomposition) -> TreeDecomposition:
    """Step (2): give every node at most two children by inserting copies."""
    tree = td.tree.copy()
    bags = dict(td.bags)
    for node in list(tree.nodes()):
        while len(tree.children(node)) > 2:
            children = list(tree.children(node))
            keep, spill = children[0], children[1:]
            copy = tree.fresh_node()
            bags[copy] = bags[node]
            # splice: node keeps [keep, copy]; copy adopts the spill.
            tree._children[node] = [keep, copy]
            tree._children[copy] = spill
            tree._parent[copy] = node
            for child in spill:
                tree._parent[child] = copy
            node = copy  # continue splitting the spill if still > 2
    return TreeDecomposition(tree, bags)


def equalize_branches(td: TreeDecomposition) -> TreeDecomposition:
    """Step (3): children of a 2-child node get bags identical to it."""
    tree = td.tree.copy()
    bags = dict(td.bags)
    for node in list(tree.nodes()):
        if len(tree.children(node)) != 2:
            continue
        for child in list(tree.children(node)):
            if bags[child] != bags[node]:
                mid = tree.insert_above(child)
                bags[mid] = bags[node]
    return TreeDecomposition(tree, bags)


def interpolate_edges(td: TreeDecomposition) -> TreeDecomposition:
    """Steps (4)+(5a): adjacent bags differ by at most one swap.

    For a parent/child pair of full bags with symmetric difference of
    size ``2d`` we insert ``d - 1`` interpolation nodes so that every
    consecutive pair exchanges exactly one element.
    """
    tree = td.tree.copy()
    bags = dict(td.bags)
    for node in list(tree.nodes()):
        for child in list(tree.children(node)):
            outs = sorted(bags[node] - bags[child], key=repr)
            ins = sorted(bags[child] - bags[node], key=repr)
            if len(outs) != len(ins):
                raise ValueError("bags must be padded before interpolation")
            d = len(outs)
            if d <= 1:
                continue
            chain = tree.insert_chain_above(child, d - 1)
            current = bags[node]
            for i, mid in enumerate(chain):
                current = (current - {outs[i]}) | {ins[i]}
                bags[mid] = current
    return TreeDecomposition(tree, bags)


def assign_tuples(td: TreeDecomposition) -> NormalizedTreeDecomposition:
    """Step (5b): orient the set bags into Definition 2.3 tuples.

    Walks top-down.  An edge whose bags swap ``p`` (out) for ``q`` (in)
    becomes: permutation node bringing ``p`` to position 0, followed by
    the replacement putting ``q`` at position 0.
    """
    tree = td.tree.copy()
    bags = dict(td.bags)
    tuples: dict[NodeId, tuple[Element, ...]] = {}
    root = tree.root
    tuples[root] = tuple(sorted(bags[root], key=repr))
    stack = [root]
    while stack:
        node = stack.pop()
        here = tuples[node]
        for child in list(tree.children(node)):
            child_set = bags[child]
            if child_set == frozenset(here):
                tuples[child] = here
            else:
                (p,) = frozenset(here) - child_set
                (q,) = child_set - frozenset(here)
                if here[0] == p:
                    tuples[child] = (q,) + here[1:]
                else:
                    fronted = (p,) + tuple(x for x in here if x != p)
                    mid = tree.insert_above(child)
                    bags[mid] = frozenset(fronted)
                    tuples[mid] = fronted
                    tuples[child] = (q,) + fronted[1:]
            stack.append(child)
    return NormalizedTreeDecomposition(tree, tuples)


def normalize(td: TreeDecomposition) -> NormalizedTreeDecomposition:
    """Full Proposition 2.4 pipeline; width is preserved exactly.

    The input must be a valid tree decomposition (of anything); the
    output satisfies Definition 2.3 and decomposes the same structure.
    """
    before = td.width
    staged = interpolate_edges(
        equalize_branches(binarize(pad_bags_to_full_size(td)))
    )
    result = assign_tuples(staged)
    if result.width != before:
        raise AssertionError(
            f"normalization changed the width: {before} -> {result.width}"
        )
    return result
