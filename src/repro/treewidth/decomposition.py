"""Tree decompositions of graphs and structures (Section 2.2).

A tree decomposition ``T = <T, (A_t)_{t in T}>`` of a structure ``A`` is a
rooted tree whose nodes carry *bags* of domain elements such that

1. every element appears in some bag,
2. for every relation tuple there is a bag containing all its elements,
3. the bags containing any fixed element form a connected subtree
   (the *connectedness condition*).

The width is ``max |A_t| - 1``; the treewidth of ``A`` is the minimum
width over all decompositions.

This module provides the rooted-tree container, the decomposition with
set-valued bags, and an executable validator for the three axioms (used
pervasively by the test-suite's property tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator, Mapping

from ..errors import InvalidDecomposition, Violation
from ..structures.graphs import Graph
from ..structures.structure import Element, Structure

NodeId = int


class RootedTree:
    """A rooted tree with ordered children and integer node ids."""

    __slots__ = ("root", "_children", "_parent", "_next_id")

    def __init__(self, root: NodeId = 0):
        self.root = root
        self._children: dict[NodeId, list[NodeId]] = {root: []}
        self._parent: dict[NodeId, NodeId | None] = {root: None}
        self._next_id = root + 1

    # -- construction ---------------------------------------------------

    def fresh_node(self) -> NodeId:
        node = self._next_id
        self._next_id += 1
        return node

    def add_child(self, parent: NodeId, child: NodeId | None = None) -> NodeId:
        """Append a (possibly fresh) child under ``parent``."""
        if child is None:
            child = self.fresh_node()
        if child in self._parent:
            raise ValueError(f"node {child} already in the tree")
        self._children[parent].append(child)
        self._children[child] = []
        self._parent[child] = parent
        return child

    def insert_above(self, node: NodeId) -> NodeId:
        """Insert a fresh node between ``node`` and its parent.

        If ``node`` is the root, the fresh node becomes the new root.
        Returns the fresh node.
        """
        fresh = self.fresh_node()
        parent = self._parent[node]
        self._children[fresh] = [node]
        self._parent[node] = fresh
        if parent is None:
            self.root = fresh
            self._parent[fresh] = None
        else:
            siblings = self._children[parent]
            siblings[siblings.index(node)] = fresh
            self._parent[fresh] = parent
        return fresh

    def insert_chain_above(self, node: NodeId, length: int) -> list[NodeId]:
        """Insert ``length`` fresh nodes between ``node`` and its parent.

        Returned top-down: the first entry is closest to the old parent.
        """
        return [self.insert_above(node) for _ in range(length)]

    # -- queries ----------------------------------------------------------

    def children(self, node: NodeId) -> tuple[NodeId, ...]:
        return tuple(self._children[node])

    def parent(self, node: NodeId) -> NodeId | None:
        return self._parent[node]

    def is_leaf(self, node: NodeId) -> bool:
        return not self._children[node]

    def nodes(self) -> Iterator[NodeId]:
        yield from self.preorder()

    def node_count(self) -> int:
        return len(self._parent)

    def leaves(self) -> Iterator[NodeId]:
        for node in self.preorder():
            if self.is_leaf(node):
                yield node

    def preorder(self) -> Iterator[NodeId]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self._children[node]))

    def postorder(self) -> Iterator[NodeId]:
        """Children before parents (the order of bottom-up passes)."""
        result: list[NodeId] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(self._children[node])
        return reversed(result)

    def subtree_nodes(self, node: NodeId) -> Iterator[NodeId]:
        """All nodes of the subtree T_t rooted at ``node`` (Definition 3.1)."""
        stack = [node]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(self._children[current])

    def copy(self) -> "RootedTree":
        clone = RootedTree.__new__(RootedTree)
        clone.root = self.root
        clone._children = {n: list(c) for n, c in self._children.items()}
        clone._parent = dict(self._parent)
        clone._next_id = self._next_id
        return clone

    def rerooted(self, new_root: NodeId) -> "RootedTree":
        """The same undirected tree, rooted at ``new_root``."""
        if new_root not in self._parent:
            raise ValueError(f"unknown node {new_root}")
        adjacency: dict[NodeId, list[NodeId]] = {n: [] for n in self._parent}
        for node, parent in self._parent.items():
            if parent is not None:
                adjacency[node].append(parent)
                adjacency[parent].append(node)
        clone = RootedTree.__new__(RootedTree)
        clone.root = new_root
        clone._children = {n: [] for n in self._parent}
        clone._parent = {new_root: None}
        clone._next_id = self._next_id
        stack = [new_root]
        seen = {new_root}
        while stack:
            node = stack.pop()
            for nbr in adjacency[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    clone._children[node].append(nbr)
                    clone._parent[nbr] = node
                    stack.append(nbr)
        return clone


class TreeDecomposition:
    """A tree decomposition with set-valued bags.

    ``bags[t]`` is a frozenset of domain elements.  Tuple-bag
    (Definition 2.3) and nice (Section 5) refinements live in
    :mod:`repro.treewidth.normalize` and :mod:`repro.treewidth.nice`.
    """

    __slots__ = ("tree", "bags")

    def __init__(self, tree: RootedTree, bags: Mapping[NodeId, Iterable[Element]]):
        self.tree = tree
        self.bags = {n: frozenset(bags[n]) for n in tree.nodes()}
        if len(self.bags) != tree.node_count():
            raise ValueError("bags must cover exactly the tree nodes")

    @classmethod
    def single_node(cls, bag: Iterable[Element]) -> "TreeDecomposition":
        tree = RootedTree()
        return cls(tree, {tree.root: frozenset(bag)})

    # -- basic measures ---------------------------------------------------

    @property
    def width(self) -> int:
        return max(len(bag) for bag in self.bags.values()) - 1

    def node_count(self) -> int:
        return self.tree.node_count()

    def all_elements(self) -> frozenset[Element]:
        out: set[Element] = set()
        for bag in self.bags.values():
            out |= bag
        return frozenset(out)

    def occurrences(self, element: Element) -> set[NodeId]:
        return {n for n, bag in self.bags.items() if element in bag}

    def copy(self) -> "TreeDecomposition":
        return TreeDecomposition(self.tree.copy(), dict(self.bags))

    def rerooted(self, new_root: NodeId) -> "TreeDecomposition":
        return TreeDecomposition(self.tree.rerooted(new_root), dict(self.bags))

    def find_node_containing(self, element: Element) -> NodeId:
        for node in self.tree.preorder():
            if element in self.bags[node]:
                return node
        raise ValueError(f"element {element!r} occurs in no bag")

    # -- validation -------------------------------------------------------

    def connectedness_violations(self) -> list[Element]:
        """Elements whose occurrence set is not a connected subtree."""
        violations = []
        for element in self.all_elements():
            nodes = self.occurrences(element)
            if not self._is_connected(nodes):
                violations.append(element)
        return violations

    def _is_connected(self, nodes: set[NodeId]) -> bool:
        if not nodes:
            return True
        start = next(iter(nodes))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            neighbors = list(self.tree.children(node))
            parent = self.tree.parent(node)
            if parent is not None:
                neighbors.append(parent)
            for nbr in neighbors:
                if nbr in nodes and nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return seen == nodes

    def graph_violations(self, graph: Graph) -> list[Violation]:
        """All Section 2.2 axiom violations against ``graph`` (no raise).

        The messages preserve the historical first-fail phrasings
        (callers and tests substring-match on them); the codes and
        subjects are the machine-readable layer the admission control
        of :mod:`repro.admission` consumes.
        """
        violations: list[Violation] = []
        elements = self.all_elements()
        missing = graph.vertices - elements
        if missing:
            subject = tuple(sorted(missing, key=repr))
            violations.append(
                Violation(
                    "element-uncovered",
                    f"vertices never covered: {sorted(missing, key=repr)}",
                    subject=subject,
                    repairable=True,
                )
            )
        alien = elements - graph.vertices
        if alien:
            subject = tuple(sorted(alien, key=repr))
            violations.append(
                Violation(
                    "alien-element",
                    f"bags mention non-vertices: {sorted(alien, key=repr)}",
                    subject=subject,
                    repairable=True,
                )
            )
        for u, v in graph.edges():
            if not any({u, v} <= bag for bag in self.bags.values()):
                violations.append(
                    Violation(
                        "tuple-uncovered",
                        f"edge ({u!r}, {v!r}) covered by no bag",
                        subject=(u, v),
                        repairable=True,
                    )
                )
        bad = self.connectedness_violations()
        if bad:
            subject = tuple(sorted(bad, key=repr))
            violations.append(
                Violation(
                    "connectedness",
                    f"connectedness violated for {sorted(bad, key=repr)}",
                    subject=subject,
                    repairable=True,
                )
            )
        return violations

    def structure_violations(self, structure: Structure) -> list[Violation]:
        """All Section 2.2 axiom violations against ``structure``.

        Checks conditions (1)-(3) directly against the relations
        (condition 2 is per-tuple, which on the Gaifman graph coincides
        with per-edge coverage only for arity <= 2; here we check the
        real thing).  Collects *every* violation instead of stopping at
        the first -- the admission layer repairs them as a set.
        """
        violations: list[Violation] = []
        elements = self.all_elements()
        missing = structure.domain - elements
        if missing:
            subject = tuple(sorted(missing, key=repr))
            violations.append(
                Violation(
                    "element-uncovered",
                    f"elements never covered: {sorted(missing, key=repr)}",
                    subject=subject,
                    repairable=True,
                )
            )
        alien = elements - structure.domain
        if alien:
            subject = tuple(sorted(alien, key=repr))
            violations.append(
                Violation(
                    "alien-element",
                    f"bags mention non-elements: {sorted(alien, key=repr)}",
                    subject=subject,
                    repairable=True,
                )
            )
        for name in structure.signature:
            for tup in structure.relation(name):
                needed = set(tup)
                if not any(needed <= bag for bag in self.bags.values()):
                    violations.append(
                        Violation(
                            "tuple-uncovered",
                            f"tuple {name}{tup!r} covered by no bag",
                            subject=(name, tup),
                            repairable=True,
                        )
                    )
        bad = self.connectedness_violations()
        if bad:
            subject = tuple(sorted(bad, key=repr))
            violations.append(
                Violation(
                    "connectedness",
                    f"connectedness violated for {sorted(bad, key=repr)}",
                    subject=subject,
                    repairable=True,
                )
            )
        return violations

    def validate_for_graph(self, graph: Graph) -> None:
        """Raise :class:`repro.errors.InvalidDecomposition` (a
        ``ValueError``) unless this is a valid TD of ``graph``."""
        violations = self.graph_violations(graph)
        if violations:
            raise InvalidDecomposition.from_violations(violations)

    def validate_for_structure(self, structure: Structure) -> None:
        """Raise :class:`repro.errors.InvalidDecomposition` (a
        ``ValueError``) unless this is a valid TD of ``structure``,
        reporting **all** violations of the Section 2.2 axioms."""
        violations = self.structure_violations(structure)
        if violations:
            raise InvalidDecomposition.from_violations(violations)

    def is_valid_for_structure(self, structure: Structure) -> bool:
        try:
            self.validate_for_structure(structure)
        except ValueError:
            return False
        return True

    # -- induced substructures (Definitions 3.1 / 3.2) --------------------

    def subtree_elements(self, node: NodeId) -> frozenset[Element]:
        """Elements occurring in the bags of T_t (the subtree at ``node``)."""
        out: set[Element] = set()
        for n in self.tree.subtree_nodes(node):
            out |= self.bags[n]
        return frozenset(out)

    def envelope_elements(self, node: NodeId) -> frozenset[Element]:
        """Elements occurring in the bags of the envelope T̄_t.

        The envelope removes the subtree at ``node`` except ``node``
        itself (Definition 3.1).
        """
        inside = set(self.tree.subtree_nodes(node)) - {node}
        out: set[Element] = set()
        for n in self.tree.nodes():
            if n not in inside:
                out |= self.bags[n]
        return frozenset(out)

    def induced_substructure(self, structure: Structure, node: NodeId) -> Structure:
        """I(A, T_t, t) without the distinguished tuple (Definition 3.2)."""
        return structure.induced(self.subtree_elements(node))

    def induced_envelope_substructure(
        self, structure: Structure, node: NodeId
    ) -> Structure:
        """I(A, T̄_t, t) without the distinguished tuple."""
        return structure.induced(self.envelope_elements(node))

    def __repr__(self) -> str:
        return (
            f"TreeDecomposition(nodes={self.node_count()}, width={self.width})"
        )


# ----------------------------------------------------------------------
# Shared validation for the normal-form refinements
# ----------------------------------------------------------------------


def refinement_violations(dec, extra: Iterable[Violation] = ()) -> list[Violation]:
    """Per-node normal-form violations of a refined decomposition.

    ``dec`` is anything exposing ``tree`` and a per-node ``node_kind``
    classifier that raises ``ValueError`` on malformed nodes -- i.e.
    :class:`repro.treewidth.nice.NiceTreeDecomposition` and
    :class:`repro.treewidth.normalize.NormalizedTreeDecomposition`,
    whose previously duplicated ``validate`` bodies both route here.
    ``extra`` prepends refinement-specific violations (e.g. the
    tuple-bag distinctness check).
    """
    violations = list(extra)
    for node in dec.tree.nodes():
        try:
            dec.node_kind(node)
        except ValueError as exc:
            violations.append(
                Violation("malformed-node", str(exc), subject=(node,))
            )
    return violations


def validate_refinement(
    dec, structure: Structure | None = None, extra: Iterable[Violation] = ()
) -> None:
    """The shared ``validate`` implementation of the nice/normalized
    refinements: normal-form shape first (every node classifiable,
    plus ``extra`` refinement-specific checks), then -- if a structure
    is supplied -- the Section 2.2 axioms against it.  Raises
    :class:`repro.errors.InvalidDecomposition` carrying all collected
    violations."""
    violations = refinement_violations(dec, extra)
    if violations:
        raise InvalidDecomposition.from_violations(violations)
    if structure is not None:
        dec.as_set_decomposition().validate_for_structure(structure)
