"""The modified ("nice") normal form of Section 5.

For the hand-crafted algorithms the paper refines Definition 2.3:
element replacement is split into an *element removal* node and an
*element introduction* node, bags become plain sets, permutation nodes
disappear, and bags need not have full size.  (This is the normal form
also considered in Kloks [23].)

Node kinds:

* ``leaf`` -- no children;
* ``introduction`` -- one child, ``bag = child_bag ⊎ {v}``;
* ``removal`` -- one child, ``bag = child_bag \\ {v}``;
* ``branch`` -- two children, both bags identical to the node's;
* ``copy`` -- one child with an identical bag.  Copy nodes arise from
  the Section 5.3 transformation that surrounds every branch node with
  equal-bag neighbours; the dynamic programs treat them as identity
  transitions.

This module also hosts the two PRIMALITY-specific refinements of
Sections 5.2/5.3: every bag containing an FD also contains the FD's
right-hand attribute, and (for the enumeration problem) every domain
element of interest occurs in at least one leaf bag.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Iterable, Mapping

from ..structures.structure import Element, Structure
from .decomposition import (
    NodeId,
    RootedTree,
    TreeDecomposition,
    validate_refinement,
)


class NiceNodeKind(Enum):
    LEAF = "leaf"
    INTRODUCTION = "introduction"
    REMOVAL = "removal"
    BRANCH = "branch"
    COPY = "copy"


class NiceTreeDecomposition:
    """A Section 5 normal-form decomposition with set bags."""

    __slots__ = ("tree", "bags")

    def __init__(self, tree: RootedTree, bags: Mapping[NodeId, Iterable[Element]]):
        self.tree = tree
        self.bags = {n: frozenset(bags[n]) for n in tree.nodes()}

    @property
    def width(self) -> int:
        return max(len(b) for b in self.bags.values()) - 1

    def bag(self, node: NodeId) -> frozenset[Element]:
        return self.bags[node]

    def node_count(self) -> int:
        return self.tree.node_count()

    def as_set_decomposition(self) -> TreeDecomposition:
        return TreeDecomposition(self.tree.copy(), dict(self.bags))

    def node_kind(self, node: NodeId) -> NiceNodeKind:
        children = self.tree.children(node)
        if len(children) == 0:
            return NiceNodeKind.LEAF
        if len(children) == 2:
            here = self.bags[node]
            if any(self.bags[c] != here for c in children):
                raise ValueError(f"branch node {node} has unequal children bags")
            return NiceNodeKind.BRANCH
        if len(children) != 1:
            raise ValueError(f"node {node} has {len(children)} children")
        here, child = self.bags[node], self.bags[children[0]]
        if here == child:
            return NiceNodeKind.COPY
        if len(here) == len(child) + 1 and child < here:
            return NiceNodeKind.INTRODUCTION
        if len(here) == len(child) - 1 and here < child:
            return NiceNodeKind.REMOVAL
        raise ValueError(
            f"node {node} differs from its child by more than one element: "
            f"{sorted(here, key=repr)} vs {sorted(child, key=repr)}"
        )

    def introduced_element(self, node: NodeId) -> Element:
        """The element ``v`` with ``bag = child_bag ⊎ {v}``."""
        (child,) = self.tree.children(node)
        (v,) = self.bags[node] - self.bags[child]
        return v

    def removed_element(self, node: NodeId) -> Element:
        """The element ``v`` with ``bag = child_bag \\ {v}``."""
        (child,) = self.tree.children(node)
        (v,) = self.bags[child] - self.bags[node]
        return v

    def validate(self, structure: Structure | None = None) -> None:
        validate_refinement(self, structure)

    def __repr__(self) -> str:
        return (
            f"NiceTreeDecomposition(nodes={self.node_count()}, "
            f"width={self.width})"
        )


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------

SortKey = Callable[[Element], object]


def _contract_copy_edges(td: TreeDecomposition) -> TreeDecomposition:
    """Merge unary equal-bag edges left over from the input decomposition."""
    tree = td.tree.copy()
    bags = dict(td.bags)
    changed = True
    while changed:
        changed = False
        for node in list(tree.nodes()):
            children = tree.children(node)
            if len(children) == 1 and bags[children[0]] == bags[node]:
                (child,) = children
                grandchildren = tree.children(child)
                tree._children[node] = list(grandchildren)
                for g in grandchildren:
                    tree._parent[g] = node
                del tree._children[child]
                del tree._parent[child]
                del bags[child]
                changed = True
                break
    return TreeDecomposition(tree, bags)


def _binarize(td: TreeDecomposition) -> TreeDecomposition:
    from .normalize import binarize

    return binarize(td)


def _equalize_branches(td: TreeDecomposition) -> TreeDecomposition:
    tree = td.tree.copy()
    bags = dict(td.bags)
    for node in list(tree.nodes()):
        if len(tree.children(node)) != 2:
            continue
        for child in list(tree.children(node)):
            if bags[child] != bags[node]:
                mid = tree.insert_above(child)
                bags[mid] = bags[node]
    return TreeDecomposition(tree, bags)


def _interpolate(
    td: TreeDecomposition,
    removal_key: SortKey,
    introduction_key: SortKey,
) -> TreeDecomposition:
    """Expand each unary edge into single-element removal/introduction steps.

    Walking bottom-up from child bag ``B'`` to parent bag ``B``: first the
    elements of ``B' \\ B`` are removed one at a time (ordered by
    ``removal_key``), then the elements of ``B \\ B'`` are introduced
    (ordered by ``introduction_key``).  The keys let callers keep
    bag invariants along the chain -- the PRIMALITY refinement removes
    FDs before attributes and introduces attributes before FDs so that
    "f in bag implies rhs(f) in bag" survives interpolation.
    """
    tree = td.tree.copy()
    bags = dict(td.bags)
    for node in list(tree.nodes()):
        for child in list(tree.children(node)):
            if len(tree.children(node)) == 2:
                continue  # branch edges are already equal-bag
            removals = sorted(
                bags[child] - bags[node], key=lambda e: (removal_key(e), repr(e))
            )
            introductions = sorted(
                bags[node] - bags[child],
                key=lambda e: (introduction_key(e), repr(e)),
            )
            steps = len(removals) + len(introductions)
            if steps <= 1:
                continue
            chain = tree.insert_chain_above(child, steps - 1)
            # Fill bags bottom-up along the chain: child is lowest.
            current = bags[child]
            bottom_up = list(reversed(chain))
            i = 0
            for v in removals:
                current = current - {v}
                if i < len(bottom_up):
                    bags[bottom_up[i]] = current
                i += 1
            for v in introductions:
                current = current | {v}
                if i < len(bottom_up):
                    bags[bottom_up[i]] = current
                i += 1
            if current != bags[node]:
                raise AssertionError("interpolation did not reach the parent bag")
    return TreeDecomposition(tree, bags)


def make_nice(
    td: TreeDecomposition,
    removal_key: SortKey | None = None,
    introduction_key: SortKey | None = None,
) -> NiceTreeDecomposition:
    """Convert any valid decomposition into the Section 5 normal form.

    Width is preserved.  ``removal_key`` / ``introduction_key`` order
    the per-element interpolation steps (see :func:`_interpolate`).
    """
    removal_key = removal_key or (lambda e: 0)
    introduction_key = introduction_key or (lambda e: 0)
    before = td.width
    staged = _interpolate(
        _equalize_branches(_binarize(_contract_copy_edges(td))),
        removal_key,
        introduction_key,
    )
    nice = NiceTreeDecomposition(staged.tree, staged.bags)
    if nice.width != before:
        raise AssertionError(f"width changed: {before} -> {nice.width}")
    nice.validate()
    return nice


def surround_branches(nice: NiceTreeDecomposition) -> NiceTreeDecomposition:
    """Insert an equal-bag copy parent above every branch node.

    Section 5.3: "for every branch node s we insert a new node u as new
    parent of s, s.t. u and s have identical bags" -- so a branch node
    has equal-bag neighbours on all three sides and the root is never a
    branch node.
    """
    tree = nice.tree.copy()
    bags = dict(nice.bags)
    for node in list(tree.nodes()):
        if len(tree.children(node)) == 2:
            mid = tree.insert_above(node)
            bags[mid] = bags[node]
    return NiceTreeDecomposition(tree, bags)


def ensure_elements_in_leaves(
    td: TreeDecomposition, elements: Iterable[Element]
) -> TreeDecomposition:
    """Attach equal-bag leaf children so each element reaches a leaf bag.

    Used by the enumeration algorithm (Section 5.3), whose ``prime``
    rule fires at leaves: every attribute must occur in at least one
    leaf bag.
    """
    tree = td.tree.copy()
    bags = dict(td.bags)
    covered: set[Element] = set()
    for node in tree.nodes():
        if tree.is_leaf(node):
            covered |= bags[node]
    for element in sorted(set(elements) - covered, key=repr):
        host = next(
            n for n in tree.preorder() if element in bags[n]
        )
        leaf = tree.add_child(host)
        bags[leaf] = bags[host]
        covered |= bags[host]
    return TreeDecomposition(tree, bags)


def reroot_to_contain(
    td: TreeDecomposition, element: Element
) -> TreeDecomposition:
    """Reroot so that ``element`` occurs in the root bag.

    The PRIMALITY decision program expects the distinguished attribute
    ``a`` in the bag at the root (Section 5.2).
    """
    node = td.find_node_containing(element)
    return td.rerooted(node)
