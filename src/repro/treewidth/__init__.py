"""Treewidth substrate: decompositions, construction, normal forms, encoding."""

from .decomposition import (
    NodeId,
    RootedTree,
    TreeDecomposition,
    refinement_violations,
    validate_refinement,
)
from .exact import is_treewidth_at_most, treewidth_exact
from .heuristics import (
    decompose_graph,
    decompose_structure,
    decomposition_from_order,
    min_degree_order,
    min_fill_order,
)
from .nice import (
    NiceNodeKind,
    NiceTreeDecomposition,
    ensure_elements_in_leaves,
    make_nice,
    reroot_to_contain,
    surround_branches,
)
from .normalize import (
    NormalizedNodeKind,
    NormalizedTreeDecomposition,
    normalize,
    pad_bags_to_full_size,
    widen,
)
from .encode import TDNode, encode_nice, encode_normalized

__all__ = [
    "NiceNodeKind",
    "NiceTreeDecomposition",
    "NodeId",
    "NormalizedNodeKind",
    "NormalizedTreeDecomposition",
    "RootedTree",
    "TDNode",
    "TreeDecomposition",
    "decompose_graph",
    "decompose_structure",
    "decomposition_from_order",
    "encode_nice",
    "encode_normalized",
    "ensure_elements_in_leaves",
    "is_treewidth_at_most",
    "make_nice",
    "min_degree_order",
    "min_fill_order",
    "normalize",
    "pad_bags_to_full_size",
    "refinement_violations",
    "validate_refinement",
    "widen",
    "reroot_to_contain",
    "surround_branches",
    "treewidth_exact",
]
