"""Tree-decomposition construction via elimination orderings.

The paper invokes Bodlaender's linear-time exact algorithm [3] as a black
box.  That algorithm is famously impractical; like every implementation
the paper's experiments rely on directly constructed or heuristic
decompositions (their Section 6 *generates* the decomposition together
with the data).  We substitute the classic greedy elimination heuristics
-- min-degree and min-fill -- which produce valid decompositions whose
width is near-optimal on the graph families used here, plus an exact
branch-and-bound in :mod:`repro.treewidth.exact` for small instances.
The substitution is recorded in DESIGN.md §5.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence

from ..structures.graphs import Graph, gaifman_graph
from ..structures.structure import Structure
from .decomposition import RootedTree, TreeDecomposition

Vertex = Hashable


def _neighbor_sets(graph: Graph) -> dict[Vertex, set[Vertex]]:
    return {v: set(graph.neighbors(v)) - {v} for v in graph.vertices}


def _fill_in_count(adj: dict[Vertex, set[Vertex]], v: Vertex) -> int:
    """Number of edges that eliminating ``v`` would add."""
    nbrs = list(adj[v])
    missing = 0
    for i, a in enumerate(nbrs):
        for b in nbrs[i + 1 :]:
            if b not in adj[a]:
                missing += 1
    return missing


def min_degree_order(graph: Graph) -> list[Vertex]:
    """Greedy elimination order, always removing a minimum-degree vertex."""
    return _greedy_order(graph, lambda adj, v: len(adj[v]))


def min_fill_order(graph: Graph) -> list[Vertex]:
    """Greedy elimination order, always removing a minimum-fill-in vertex."""
    return _greedy_order(graph, _fill_in_count)


def _greedy_order(
    graph: Graph, cost: Callable[[dict[Vertex, set[Vertex]], Vertex], int]
) -> list[Vertex]:
    adj = _neighbor_sets(graph)
    order: list[Vertex] = []
    while adj:
        # repr-based tie-break keeps the heuristics deterministic across runs
        v = min(adj, key=lambda u: (cost(adj, u), repr(u)))
        order.append(v)
        nbrs = adj.pop(v)
        for a in nbrs:
            adj[a].discard(v)
            adj[a] |= nbrs - {a}
    return order


def decomposition_from_order(
    graph: Graph, order: Sequence[Vertex]
) -> TreeDecomposition:
    """Build a tree decomposition from an elimination order.

    Standard construction: eliminating ``v`` creates the bag
    ``{v} ∪ N(v)`` (neighbors at elimination time, which are then made a
    clique).  The bag of ``v`` hangs under the bag of the first-eliminated
    vertex among ``N(v)``; vertices with no later neighbor start new
    components that are stitched to the previous root (harmless for the
    TD axioms).
    """
    vertices = list(order)
    if set(vertices) != set(graph.vertices):
        raise ValueError("order must enumerate exactly the vertices")
    if not vertices:
        return TreeDecomposition.single_node(frozenset())

    adj = _neighbor_sets(graph)
    position = {v: i for i, v in enumerate(vertices)}
    bag_of: dict[Vertex, frozenset[Vertex]] = {}
    attach_to: dict[Vertex, Vertex | None] = {}
    for v in vertices:
        nbrs = adj.pop(v)
        bag_of[v] = frozenset(nbrs | {v})
        attach_to[v] = min(nbrs, key=lambda u: position[u]) if nbrs else None
        for a in nbrs:
            adj[a].discard(v)
            adj[a] |= nbrs - {a}

    # Build the tree: process in reverse elimination order so parents exist.
    tree = RootedTree()
    bags: dict[int, frozenset[Vertex]] = {}
    node_of: dict[Vertex, int] = {}
    reverse = list(reversed(vertices))
    root_vertex = reverse[0]
    node_of[root_vertex] = tree.root
    bags[tree.root] = bag_of[root_vertex]
    for v in reverse[1:]:
        anchor = attach_to[v]
        parent_node = node_of[anchor] if anchor is not None else node_of[root_vertex]
        node = tree.add_child(parent_node)
        node_of[v] = node
        bags[node] = bag_of[v]
    return TreeDecomposition(tree, bags)


def decompose_graph(graph: Graph, method: str = "min_fill") -> TreeDecomposition:
    """Heuristic tree decomposition of a graph.

    ``method`` is ``"min_fill"`` (default, usually smaller width) or
    ``"min_degree"`` (faster).  The result is always a *valid*
    decomposition; only its width is heuristic.
    """
    if method == "min_fill":
        order = min_fill_order(graph)
    elif method == "min_degree":
        order = min_degree_order(graph)
    else:
        raise ValueError(f"unknown method {method!r}")
    td = decomposition_from_order(graph, order)
    td.validate_for_graph(graph)
    return td


def decompose_structure(
    structure: Structure, method: str = "min_fill"
) -> TreeDecomposition:
    """Heuristic tree decomposition of an arbitrary tau-structure.

    Decomposes the Gaifman graph; bags then automatically cover every
    relation tuple (each tuple's elements form a clique there).
    """
    graph = gaifman_graph(structure)
    td = decompose_graph(graph, method=method)
    td.validate_for_structure(structure)
    return td
