"""Encoding ``A_td``: the structure plus its tree decomposition (Section 4).

The extended signature is ``tau_td = tau ∪ {root, leaf, child1, child2,
bag}``.  ``child1(s1, s)`` says s1 is the first (or only) child of s;
``child2(s2, s)`` the second child; ``bag`` has arity ``w + 2`` with
``bag(t, a0, ..., aw)`` in the Definition 2.3 tuple form.

For the Section 5 algorithms bags are sets; there we encode
``bag(t, X)`` where ``X`` is a frozenset *constant* -- the paper's
"succinct representation by non-monadic datalog" where fixed-size sets
are first-class values handled by built-ins (Section 6, optimizations
(1) and (4)).  A hook lets problem modules split the payload, e.g.
PRIMALITY's ``bag(t, At, Fd)``.

Tree nodes live in the same domain as the structure's elements
(Section 4: "The domain of A_td is the union of dom(A) and the nodes of
T"); :class:`TDNode` wrappers keep them collision-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..structures.signature import Signature
from ..structures.structure import Element, Structure
from .decomposition import NodeId
from .nice import NiceTreeDecomposition
from .normalize import NormalizedTreeDecomposition


@dataclass(frozen=True, order=True)
class TDNode:
    """A tree-decomposition node as a domain element of ``A_td``."""

    index: int

    def __str__(self) -> str:
        return f"s{self.index}"


def _tree_facts(
    tree,
    node_const: Callable[[NodeId], TDNode],
) -> tuple[set, set, set, set]:
    roots = {(node_const(tree.root),)}
    leaves = set()
    child1 = set()
    child2 = set()
    for node in tree.nodes():
        children = tree.children(node)
        if not children:
            leaves.add((node_const(node),))
        if len(children) >= 1:
            child1.add((node_const(children[0]), node_const(node)))
        if len(children) == 2:
            child2.add((node_const(children[1]), node_const(node)))
        if len(children) > 2:
            raise ValueError(f"node {node} has more than two children")
    return roots, leaves, child1, child2


def encode_normalized(
    structure: Structure, ntd: NormalizedTreeDecomposition
) -> Structure:
    """``A_td`` for a Definition 2.3 decomposition (Example 4.2).

    ``bag`` has arity ``w + 2``: the node followed by the bag tuple.
    """
    w = ntd.width
    signature = structure.signature.extended(
        {"root": 1, "leaf": 1, "child1": 2, "child2": 2, "bag": w + 2}
    )
    node_const = TDNode
    roots, leaves, child1, child2 = _tree_facts(ntd.tree, node_const)
    bags = {
        (node_const(node),) + ntd.bag(node) for node in ntd.tree.nodes()
    }
    domain = set(structure.domain) | {node_const(n) for n in ntd.tree.nodes()}
    relations = {name: set(structure.relation(name)) for name in structure.signature}
    relations.update(
        root=roots, leaf=leaves, child1=child1, child2=child2, bag=bags
    )
    return Structure(signature, domain, relations)


def encode_nice(
    structure: Structure,
    nice: NiceTreeDecomposition,
    bag_payload: Callable[[frozenset[Element]], tuple] | None = None,
) -> Structure:
    """``A_td`` for a Section 5 decomposition with set-valued bags.

    ``bag_payload`` maps a bag to the constant tuple stored after the
    node in the ``bag`` relation.  The default stores the whole bag as a
    single frozenset constant; PRIMALITY passes a splitter producing
    ``(At, Fd)``.
    """
    if bag_payload is None:
        bag_payload = lambda bag: (bag,)
    payload_arity = None
    bags = set()
    for node in nice.tree.nodes():
        payload = tuple(bag_payload(nice.bag(node)))
        if payload_arity is None:
            payload_arity = len(payload)
        elif payload_arity != len(payload):
            raise ValueError("bag_payload must have a fixed arity")
        bags.add((TDNode(node),) + payload)
    payload_arity = payload_arity or 1
    signature = structure.signature.extended(
        {
            "root": 1,
            "leaf": 1,
            "child1": 2,
            "child2": 2,
            "bag": 1 + payload_arity,
        }
    )
    roots, leaves, child1, child2 = _tree_facts(nice.tree, TDNode)
    domain = set(structure.domain) | {TDNode(n) for n in nice.tree.nodes()}
    # Frozenset payload constants also enter the domain so that A_td is a
    # well-formed structure (datalog constants must be domain elements).
    for bag_fact in bags:
        domain.update(bag_fact)
    relations = {name: set(structure.relation(name)) for name in structure.signature}
    relations.update(
        root=roots, leaf=leaves, child1=child1, child2=child2, bag=bags
    )
    return Structure(signature, domain, relations)
