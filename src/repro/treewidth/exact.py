"""Exact treewidth for small graphs.

Dynamic programming over vertex subsets (Bodlaender, Fomin, Koster,
Kratsch & Thilikos, "On exact algorithms for treewidth"): the treewidth
equals the minimum over elimination orders of the maximum elimination
degree, and that minimum satisfies

    f(S) = min over v in S of  max( f(S - {v}),  q(S - {v}, v) )

where ``q(S, v)`` is the number of vertices outside ``S ∪ {v}`` reachable
from ``v`` via paths whose internal vertices lie in ``S``.  Runs in
O(2^n · poly(n)); intended for the small instances used to calibrate the
heuristics in tests and benchmarks (n <= ~16).
"""

from __future__ import annotations

from typing import Hashable

from ..structures.graphs import Graph

Vertex = Hashable


def _component_degree(
    adjacency: list[set[int]], through: int, v: int, n: int
) -> int:
    """``q(S, v)``: vertices outside S ∪ {v} reachable from v through S.

    ``through`` is the bitmask of S.
    """
    seen_mask = 1 << v
    stack = [v]
    outside: set[int] = set()
    while stack:
        u = stack.pop()
        for w in adjacency[u]:
            bit = 1 << w
            if seen_mask & bit:
                continue
            if through & bit:
                seen_mask |= bit
                stack.append(w)
            else:
                outside.add(w)
    return len(outside)


def treewidth_exact(graph: Graph) -> int:
    """The exact treewidth of ``graph`` (exponential-time DP)."""
    vertices = sorted(graph.vertices, key=repr)
    n = len(vertices)
    if n == 0:
        return 0
    if n > 22:
        raise ValueError(
            f"exact treewidth DP limited to 22 vertices, got {n}; "
            "use repro.treewidth.heuristics instead"
        )
    index = {v: i for i, v in enumerate(vertices)}
    adjacency: list[set[int]] = [set() for _ in range(n)]
    for u, v in graph.edges():
        if u != v:
            adjacency[index[u]].add(index[v])
            adjacency[index[v]].add(index[u])

    full = (1 << n) - 1
    # f over subsets, computed by increasing popcount; f(empty) = -inf
    f: dict[int, int] = {0: -1}
    by_popcount: list[list[int]] = [[] for _ in range(n + 1)]
    for mask in range(1 << n):
        by_popcount[mask.bit_count()].append(mask)
    for size in range(1, n + 1):
        for mask in by_popcount[size]:
            best = n  # upper bound: eliminating into a clique
            rest = mask
            while rest:
                low = rest & -rest
                v = low.bit_length() - 1
                rest ^= low
                without = mask ^ low
                candidate = max(
                    f[without], _component_degree(adjacency, without, v, n)
                )
                if candidate < best:
                    best = candidate
            f[mask] = best
    return f[full]


def is_treewidth_at_most(graph: Graph, w: int) -> bool:
    """Decision variant, for tests mirroring the paper's '<= w' checks."""
    return treewidth_exact(graph) <= w
